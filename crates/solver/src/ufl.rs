//! Welfare-maximizing facility location: the engine behind the paper's
//! *Optimal* and *LocalSearch* point-query schedulers.
//!
//! Eq. 9 of the paper assigns sensors to queried locations: opening sensor
//! `i` costs `c_i` once, each location `l` collects the value `v_{l,i}` of
//! the single sensor assigned to it, and the objective is total value minus
//! total cost. Given the set `W` of open sensors, the optimal assignment is
//! trivially "each location takes its best open sensor", so the program
//! collapses to maximizing
//!
//! ```text
//! u(W) = Σ_l max(0, max_{i∈W} v_{l,i}) − Σ_{i∈W} c_i          (Eq. 12)
//! ```
//!
//! — an uncapacitated-facility-location (UFL) welfare problem. This module
//! provides:
//!
//! * [`solve_exact`] — the literal Eq. 9 BILP per connected component of
//!   the sensor/location bipartite graph (sensors only interact through
//!   shared locations, so components solve independently), handed to the
//!   best-bound branch-and-bound of [`crate::bilp`] with the Local
//!   Search / greedy solutions seeding the incumbent. Node budgets and
//!   the wall-clock deadline are **global across components**, so the
//!   whole solve honours [`SolveOptions`] and is anytime: a limited solve
//!   still returns a feasible open set at least as good as Local Search.
//! * [`lp_relaxation_bound`] — the root LP-relaxation value, a certified
//!   upper bound on Eq. 12 welfare (used for `optimality_gap` reporting
//!   against heuristic schedulers).
//! * [`solve_local_search`] — the Feige-et-al. Local Search of §3.1.2,
//!   specialized with incremental best/second-best bookkeeping so that a
//!   full add-pass costs `O(edges)` instead of `O(n · oracle)`.
//! * [`solve_greedy`] — greedy marginal-gain opening (used as a primal
//!   heuristic and as an extra baseline in ablation benches).

use crate::bilp::{self, BilpProblem, SolveOptions, SolveStatus, WarmStart};
use crate::simplex::{self, Constraint, LpStatus};
use std::time::Instant;

/// A welfare-maximization facility-location instance.
#[derive(Debug, Clone)]
pub struct WelfareProblem {
    /// Opening cost per facility (sensor), `c_i ≥ 0`.
    pub facility_cost: Vec<f64>,
    /// Per client (queried location): candidate facilities and the value
    /// the client derives from each, `v > 0`. Facilities absent from the
    /// list yield value 0 for this client.
    pub client_values: Vec<Vec<(usize, f64)>>,
}

impl WelfareProblem {
    /// Creates an instance, dropping non-positive candidate values (they
    /// can never be chosen by a welfare maximizer, exactly like the `−1`
    /// trick in the paper's Eq. 10).
    pub fn new(facility_cost: Vec<f64>, mut client_values: Vec<Vec<(usize, f64)>>) -> Self {
        let nf = facility_cost.len();
        for list in &mut client_values {
            list.retain(|&(f, v)| {
                assert!(f < nf, "facility index {f} out of range");
                v > 0.0
            });
            // Deterministic order.
            list.sort_by_key(|&(f, _)| f);
        }
        Self {
            facility_cost,
            client_values,
        }
    }

    /// Number of facilities (sensors).
    pub fn num_facilities(&self) -> usize {
        self.facility_cost.len()
    }

    /// Number of clients (queried locations).
    pub fn num_clients(&self) -> usize {
        self.client_values.len()
    }

    /// Eq. 12 utility of an open set: best-open value per client minus the
    /// cost of *every* open facility (including useless ones).
    pub fn welfare_of(&self, open: &[bool]) -> f64 {
        assert_eq!(open.len(), self.num_facilities());
        let value: f64 = self
            .client_values
            .iter()
            .map(|cands| {
                cands
                    .iter()
                    .filter(|&&(f, _)| open[f])
                    .map(|&(_, v)| v)
                    .fold(0.0, f64::max)
            })
            .sum();
        let cost: f64 = open
            .iter()
            .zip(&self.facility_cost)
            .filter(|(&o, _)| o)
            .map(|(_, &c)| c)
            .sum();
        value - cost
    }

    /// Builds the final allocation from an open set: every client takes
    /// its best open facility (ties to the lowest index); facilities that
    /// end up serving no client are pruned, so the reported welfare never
    /// pays for dead sensors. Pruning can only increase Eq. 12 utility, and
    /// an optimal open set is unaffected (it never contains dead sensors).
    pub fn solution_from_open(&self, open: &[bool]) -> WelfareSolution {
        let mut assignment: Vec<Option<usize>> = Vec::with_capacity(self.num_clients());
        let mut used = vec![false; self.num_facilities()];
        for cands in &self.client_values {
            let mut best: Option<(usize, f64)> = None;
            for &(f, v) in cands {
                if !open[f] {
                    continue;
                }
                match best {
                    Some((_, bv)) if bv >= v => {}
                    _ => best = Some((f, v)),
                }
            }
            if let Some((f, _)) = best {
                used[f] = true;
            }
            assignment.push(best.map(|(f, _)| f));
        }
        let welfare = self.welfare_of(&used);
        WelfareSolution {
            open: used,
            assignment,
            welfare,
            status: SolveStatus::Feasible,
            lp_bound: None,
            nodes: 0,
        }
    }

    /// The literal Eq. 9 BILP over `[X_i | Y_{l,e}]`: open variables
    /// `X_i` (objective `−c_i`), one assignment variable per candidate
    /// edge (objective `v_{l,i}`), coupled by `Y ≤ X` and "at most one
    /// assignment per location". Basic solutions are integral in `Y` once
    /// `X` is, so branch-and-bound effectively only branches on opens.
    pub fn to_bilp(&self) -> BilpProblem {
        let nf = self.num_facilities();
        let mut obj: Vec<f64> = self.facility_cost.iter().map(|&c| -c).collect();
        let mut constraints = Vec::new();
        let mut y = nf;
        for cands in &self.client_values {
            let mut row = Vec::new();
            for &(f, v) in cands {
                obj.push(v);
                constraints.push(Constraint::le(vec![(y, 1.0), (f, -1.0)], 0.0));
                row.push((y, 1.0));
                y += 1;
            }
            if !row.is_empty() {
                constraints.push(Constraint::le(row, 1.0));
            }
        }
        let mut bp = BilpProblem::maximize(obj);
        bp.constraints = constraints;
        bp
    }

    /// Lifts a facility open set into a feasible `[X | Y]` point of
    /// [`Self::to_bilp`]: each client's `Y` picks its best open candidate.
    fn bilp_point(&self, open: &[bool]) -> Vec<bool> {
        let nf = self.num_facilities();
        let ny: usize = self.client_values.iter().map(Vec::len).sum();
        let mut x = vec![false; nf + ny];
        x[..nf].copy_from_slice(open);
        let mut y = nf;
        for cands in &self.client_values {
            let mut best: Option<(usize, f64)> = None;
            for (e, &(f, v)) in cands.iter().enumerate() {
                if open[f] {
                    match best {
                        Some((_, bv)) if bv >= v => {}
                        _ => best = Some((e, v)),
                    }
                }
            }
            if let Some((e, _)) = best {
                x[y + e] = true;
            }
            y += cands.len();
        }
        x
    }

    /// Splits the instance into connected components of the bipartite
    /// facility/client graph. Returns per-component sub-problems with maps
    /// back to original facility and client indices.
    fn components(&self) -> Vec<Component> {
        let nf = self.num_facilities();
        let mut dsu = Dsu::new(nf);
        for cands in &self.client_values {
            if let Some(&(first, _)) = cands.first() {
                for &(f, _) in &cands[1..] {
                    dsu.union(first, f);
                }
            }
        }
        // Group facilities by root.
        let mut groups: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for f in 0..nf {
            groups.entry(dsu.find(f)).or_default().push(f);
        }
        let mut comps: Vec<Component> = Vec::new();
        let mut root_to_comp: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut roots: Vec<usize> = groups.keys().copied().collect();
        roots.sort_unstable();
        for root in roots {
            let facilities = groups.remove(&root).expect("root present");
            root_to_comp.insert(root, comps.len());
            let mut local = vec![usize::MAX; nf];
            for (li, &f) in facilities.iter().enumerate() {
                local[f] = li;
            }
            comps.push(Component {
                facility_map: facilities,
                local_facility: local,
                clients: Vec::new(),
                local_client_values: Vec::new(),
            });
        }
        let mut with_clients: Vec<(usize, Vec<(usize, f64)>)> = Vec::new();
        for (l, cands) in self.client_values.iter().enumerate() {
            if cands.is_empty() {
                continue; // unservable client contributes nothing
            }
            let root = dsu.find(cands[0].0);
            let ci = root_to_comp[&root];
            with_clients.push((ci, cands.clone()));
            comps[ci].clients.push(l);
        }
        for (ci, cands) in with_clients {
            let local: Vec<(usize, f64)> = cands
                .iter()
                .map(|&(f, v)| (comps[ci].local_facility[f], v))
                .collect();
            comps[ci].local_client_values.push(local);
        }
        comps
    }
}

#[derive(Debug, Default, Clone)]
struct Component {
    /// local facility index → global facility index
    facility_map: Vec<usize>,
    /// global facility index → local (usize::MAX when absent)
    local_facility: Vec<usize>,
    /// global client indices in this component
    clients: Vec<usize>,
    /// client candidate lists re-indexed to local facility ids
    local_client_values: Vec<Vec<(usize, f64)>>,
}

/// Result of a facility-location solve.
#[derive(Debug, Clone)]
pub struct WelfareSolution {
    /// Which facilities are open (after pruning dead ones).
    pub open: Vec<bool>,
    /// Per client: the facility serving it, if any.
    pub assignment: Vec<Option<usize>>,
    /// Achieved Eq. 12 welfare.
    pub welfare: f64,
    /// How the solve terminated. Heuristics ([`solve_greedy`],
    /// [`solve_local_search`]) always report [`SolveStatus::Feasible`];
    /// [`solve_exact`] reports [`SolveStatus::Optimal`] when every
    /// component closed its search, and never `Infeasible` (the empty
    /// open set is always feasible with welfare 0).
    pub status: SolveStatus,
    /// Certified upper bound on the optimal Eq. 12 welfare, when one was
    /// computed (LP relaxation per component; the `O(edges)`
    /// dual-feasible bound for components whose LP was skipped for size
    /// or cut short).
    pub lp_bound: Option<f64>,
    /// Branch-and-bound nodes spent across all components.
    pub nodes: usize,
}

impl WelfareSolution {
    /// True when the solve proved optimality.
    pub fn proven_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }
}

const EPS: f64 = 1e-9;

/// Largest Eq. 9 BILP (opens + assignment edges) a single component may
/// put through the dense-tableau simplex. The tableau is
/// `O(rows × cols)` memory with both factors linear in the variable
/// count, so a city-scale giant component (tens of thousands of edges)
/// would allocate billions of cells. Components past this threshold keep
/// their heuristic seed, charge the `O(edges)` dual-feasible bound
/// (`fast_dual_bound`), and surface [`SolveStatus::LimitReached`] so
/// callers know optimality was not proven. 600 variables keeps the
/// worst-case tableau around a few megabytes and a component solve in
/// the low milliseconds.
pub const MAX_EXACT_VARS: usize = 600;

/// Greedy marginal-gain facility opening (test baseline + primal warm
/// start): repeatedly open the facility with the best welfare gain while
/// positive.
pub fn solve_greedy(p: &WelfareProblem) -> WelfareSolution {
    let nf = p.num_facilities();
    let mut open = vec![false; nf];
    let mut best_val = vec![0.0f64; p.num_clients()];
    // facility → (client, value) adjacency.
    let fac_clients = facility_adjacency(p);

    loop {
        let mut best: Option<(usize, f64)> = None;
        for f in 0..nf {
            if open[f] {
                continue;
            }
            let gain: f64 = fac_clients[f]
                .iter()
                .map(|&(l, v)| (v - best_val[l]).max(0.0))
                .sum::<f64>()
                - p.facility_cost[f];
            if gain > EPS {
                match best {
                    Some((_, g)) if g >= gain => {}
                    _ => best = Some((f, gain)),
                }
            }
        }
        match best {
            Some((f, _)) => {
                open[f] = true;
                for &(l, v) in &fac_clients[f] {
                    if v > best_val[l] {
                        best_val[l] = v;
                    }
                }
            }
            None => break,
        }
    }
    p.solution_from_open(&open)
}

/// Specialized Feige-et-al. Local Search over Eq. 12 (see §3.1.2 of the
/// paper): add/delete passes with a `(1 + ε/n²)` improvement threshold,
/// returning the best of the local optimum, its complement, and ∅.
pub fn solve_local_search(p: &WelfareProblem, epsilon: f64) -> WelfareSolution {
    let nf = p.num_facilities();
    if nf == 0 {
        return p.solution_from_open(&[]);
    }
    let fac_clients = facility_adjacency(p);
    let mut state = LsState::new(p, &fac_clients);

    // Best singleton start.
    let mut best_single: Option<(usize, f64)> = None;
    for f in 0..nf {
        let gain = state.add_gain(f);
        let val = gain; // u(∅) = 0
        match best_single {
            Some((_, b)) if b >= val => {}
            _ => best_single = Some((f, val)),
        }
    }
    let (start, _) = best_single.expect("nf > 0");
    state.open_facility(start);

    let factor = 1.0 + epsilon / ((nf * nf) as f64);
    let threshold = |cur: f64| -> f64 {
        if cur > 0.0 {
            cur * factor
        } else {
            cur + 1e-9
        }
    };

    let max_moves = 200 * nf * nf + 1000;
    let mut moves = 0;
    'outer: while moves < max_moves {
        // Add pass.
        loop {
            let mut best: Option<(usize, f64)> = None;
            for f in 0..nf {
                if state.open[f] {
                    continue;
                }
                let val = state.utility + state.add_gain(f);
                if val > threshold(state.utility) {
                    match best {
                        Some((_, b)) if b >= val => {}
                        _ => best = Some((f, val)),
                    }
                }
            }
            match best {
                Some((f, _)) => {
                    state.open_facility(f);
                    moves += 1;
                    if moves >= max_moves {
                        break 'outer;
                    }
                }
                None => break,
            }
        }
        // Delete pass: first improving deletion restarts adding.
        for f in 0..nf {
            if !state.open[f] {
                continue;
            }
            let val = state.utility + state.remove_gain(f);
            if val > threshold(state.utility) {
                state.close_facility(f);
                moves += 1;
                continue 'outer;
            }
        }
        break;
    }

    // Candidates: W, complement, ∅ (Eq. 12 semantics for the comparison).
    let w_val = state.utility;
    let complement: Vec<bool> = state.open.iter().map(|&o| !o).collect();
    let comp_val = p.welfare_of(&complement);
    let (chosen, _val) = if w_val >= comp_val && w_val >= 0.0 {
        (state.open.clone(), w_val)
    } else if comp_val >= 0.0 {
        (complement, comp_val)
    } else {
        (vec![false; nf], 0.0)
    };
    p.solution_from_open(&chosen)
}

/// Incremental Eq. 12 bookkeeping for local search: per-client best and
/// second-best open values.
struct LsState<'a> {
    p: &'a WelfareProblem,
    fac_clients: &'a [Vec<(usize, f64)>],
    open: Vec<bool>,
    /// best open value per client (0 when unserved)
    best: Vec<f64>,
    /// facility providing `best` (usize::MAX when unserved)
    best_fac: Vec<usize>,
    /// second-best open value per client
    second: Vec<f64>,
    utility: f64,
}

impl<'a> LsState<'a> {
    fn new(p: &'a WelfareProblem, fac_clients: &'a [Vec<(usize, f64)>]) -> Self {
        Self {
            p,
            fac_clients,
            open: vec![false; p.num_facilities()],
            best: vec![0.0; p.num_clients()],
            best_fac: vec![usize::MAX; p.num_clients()],
            second: vec![0.0; p.num_clients()],
            utility: 0.0,
        }
    }

    /// Δu from opening facility `f`.
    fn add_gain(&self, f: usize) -> f64 {
        self.fac_clients[f]
            .iter()
            .map(|&(l, v)| (v - self.best[l]).max(0.0))
            .sum::<f64>()
            - self.p.facility_cost[f]
    }

    /// Δu from closing facility `f`.
    fn remove_gain(&self, f: usize) -> f64 {
        let lost: f64 = self.fac_clients[f]
            .iter()
            .filter(|&&(l, _)| self.best_fac[l] == f)
            .map(|&(l, _)| self.best[l] - self.second[l])
            .sum();
        self.p.facility_cost[f] - lost
    }

    fn open_facility(&mut self, f: usize) {
        debug_assert!(!self.open[f]);
        self.utility += self.add_gain(f);
        self.open[f] = true;
        for &(l, v) in &self.fac_clients[f] {
            if v > self.best[l] {
                self.second[l] = self.best[l];
                self.best[l] = v;
                self.best_fac[l] = f;
            } else if v > self.second[l] {
                self.second[l] = v;
            }
        }
    }

    fn close_facility(&mut self, f: usize) {
        debug_assert!(self.open[f]);
        self.utility += self.remove_gain(f);
        self.open[f] = false;
        for &(l, _) in &self.fac_clients[f] {
            self.recompute_client(l);
        }
    }

    fn recompute_client(&mut self, l: usize) {
        let mut best = 0.0f64;
        let mut best_fac = usize::MAX;
        let mut second = 0.0f64;
        for &(f, v) in &self.p.client_values[l] {
            if !self.open[f] {
                continue;
            }
            if v > best {
                second = best;
                best = v;
                best_fac = f;
            } else if v > second {
                second = v;
            }
        }
        self.best[l] = best;
        self.best_fac[l] = best_fac;
        self.second[l] = second;
    }
}

/// Exact solve through the new solver core: connected-component
/// decomposition, then the Eq. 9 BILP of each component handed to the
/// best-bound branch-and-bound of [`crate::bilp`].
///
/// The anytime contract: the Local Search and greedy solutions (plus
/// `options.warm_start.incumbent`, interpreted as a **facility-space**
/// open-set hint from a previous slot) seed every component's incumbent
/// *before* any LP is solved, so a deadline- or budget-limited solve
/// always returns a feasible open set at least as good as Local Search,
/// with a status ([`SolveStatus::Feasible`] / [`SolveStatus::LimitReached`])
/// that is never confusable with infeasibility. `options.max_nodes` and
/// `options.deadline` are global across components;
/// `options.warm_start.basis` is ignored here (component shapes vary
/// from slot to slot — basis reuse lives at the [`crate::bilp`] level).
///
/// Components whose Eq. 9 BILP would exceed [`MAX_EXACT_VARS`] variables
/// never touch the tableau: they keep the heuristic seed and a certified
/// `O(edges)` dual bound, and the solve reports
/// [`SolveStatus::LimitReached`]. This is what keeps city-scale slots —
/// where the facility/location graph collapses into one giant connected
/// component — inside the per-slot time budget.
pub fn solve_exact(p: &WelfareProblem, options: &SolveOptions) -> WelfareSolution {
    let nf = p.num_facilities();
    let mut open = vec![false; nf];
    let mut lp_bound = 0.0f64;
    let mut nodes = 0usize;
    let mut any_limit = false;
    let mut any_unproven = false;
    let deadline_at = options.deadline.map(|d| Instant::now() + d);
    let warm_hint = options
        .warm_start
        .incumbent
        .as_ref()
        .filter(|h| h.len() == nf);

    for comp in p.components() {
        if comp.clients.is_empty() {
            continue;
        }
        let sub = WelfareProblem::new(
            comp.facility_map
                .iter()
                .map(|&f| p.facility_cost[f])
                .collect(),
            comp.local_client_values.clone(),
        );

        // Seed: best of local search, greedy, and the warm open hint
        // restricted to this component. Dead facilities are pruned, so
        // the seed's welfare is the pruned Eq. 12 value.
        let mut seed = solve_local_search(&sub, 0.01);
        let gr = solve_greedy(&sub);
        if gr.welfare > seed.welfare {
            seed = gr;
        }
        if let Some(hint) = warm_hint {
            let local: Vec<bool> = comp.facility_map.iter().map(|&f| hint[f]).collect();
            let hinted = sub.solution_from_open(&local);
            if hinted.welfare > seed.welfare {
                seed = hinted;
            }
        }

        // Fast path: one facility — the open/closed comparison is exact.
        if sub.num_facilities() == 1 {
            let gain = sub.welfare_of(&[true]);
            let opened = gain > EPS;
            if opened {
                open[comp.facility_map[0]] = true;
            }
            lp_bound += gain.max(0.0);
            continue;
        }

        // Out of time: keep the heuristic seed, charge the dual bound.
        if deadline_at.is_some_and(|at| Instant::now() >= at) {
            any_unproven = true;
            lp_bound += fast_dual_bound(&sub);
            for (li, &gf) in comp.facility_map.iter().enumerate() {
                if seed.open[li] {
                    open[gf] = true;
                }
            }
            continue;
        }

        // Component too big for the dense tableau: keep the heuristic
        // seed, charge the O(edges) dual bound, and report the strike as
        // a limit (the search was cut short by size, not proven).
        if bilp_vars(&sub) > MAX_EXACT_VARS {
            any_limit = true;
            lp_bound += fast_dual_bound(&sub);
            for (li, &gf) in comp.facility_map.iter().enumerate() {
                if seed.open[li] {
                    open[gf] = true;
                }
            }
            continue;
        }

        let bp = sub.to_bilp();
        let comp_opts = SolveOptions {
            max_pivots: options.max_pivots,
            max_nodes: options.max_nodes.saturating_sub(nodes),
            deadline: deadline_at.map(|at| at.saturating_duration_since(Instant::now())),
            int_tolerance: options.int_tolerance,
            warm_start: WarmStart {
                incumbent: Some(sub.bilp_point(&seed.open)),
                basis: None,
            },
        };
        let sol = bilp::solve(&bp, &comp_opts);
        nodes += sol.nodes;
        match sol.status {
            SolveStatus::Optimal => {}
            SolveStatus::Feasible => any_unproven = true,
            // Infeasible/Unbounded cannot occur for Eq. 9 programs; treat
            // them like a limit strike and keep the heuristic seed.
            _ => any_limit = true,
        }
        lp_bound += if sol.lp_bound.is_finite() {
            sol.lp_bound.max(0.0)
        } else {
            fast_dual_bound(&sub)
        };
        // The incumbent is always at least the seed (it was offered
        // first); fall back to the seed defensively anyway.
        let sub_open: Vec<bool> = match &sol.x {
            Some(x) if sol.objective >= seed.welfare - 1e-9 => x[..sub.num_facilities()].to_vec(),
            _ => seed.open.clone(),
        };
        for (li, &gf) in comp.facility_map.iter().enumerate() {
            if sub_open[li] {
                open[gf] = true;
            }
        }
    }

    let mut sol = p.solution_from_open(&open);
    sol.status = if any_limit {
        SolveStatus::LimitReached
    } else if any_unproven {
        SolveStatus::Feasible
    } else {
        SolveStatus::Optimal
    };
    // The bound is per-component-certified; clamp against the achieved
    // welfare so reported gaps are never negative under float noise.
    sol.lp_bound = Some(lp_bound.max(sol.welfare));
    sol.nodes = nodes;
    sol
}

/// Certified upper bound on the optimal Eq. 12 welfare via the root LP
/// relaxation of each component (no branching). Components past
/// [`MAX_EXACT_VARS`], or whose LP hits `max_pivots`, fall back to an
/// `O(edges)` dual-feasible bound (`fast_dual_bound`). Used to report
/// `optimality_gap` for heuristic schedulers without running the full
/// branch-and-bound.
pub fn lp_relaxation_bound(p: &WelfareProblem, max_pivots: usize) -> f64 {
    let mut bound = 0.0f64;
    for comp in p.components() {
        if comp.clients.is_empty() {
            continue;
        }
        let sub = WelfareProblem::new(
            comp.facility_map
                .iter()
                .map(|&f| p.facility_cost[f])
                .collect(),
            comp.local_client_values.clone(),
        );
        if sub.num_facilities() == 1 {
            bound += sub.welfare_of(&[true]).max(0.0);
            continue;
        }
        if bilp_vars(&sub) > MAX_EXACT_VARS {
            bound += fast_dual_bound(&sub);
            continue;
        }
        let lp = sub.to_bilp().lp_relaxation();
        let out = simplex::solve_with(&lp, max_pivots, None);
        bound += match out.status {
            LpStatus::Optimal => out.objective.max(0.0),
            _ => fast_dual_bound(&sub),
        };
    }
    bound
}

/// Number of variables the Eq. 9 BILP of [`WelfareProblem::to_bilp`]
/// would carry: one open per facility plus one assignment per candidate
/// edge.
fn bilp_vars(p: &WelfareProblem) -> usize {
    p.num_facilities() + p.client_values.iter().map(Vec::len).sum::<usize>()
}

/// `O(edges)` dual-feasible upper bound on Eq. 12 welfare, for components
/// too large to put through the dense tableau. In the LP dual of Eq. 9
/// (`α_l` per location, `β_{l,e}` per candidate edge) feasibility needs
/// `α_l + β_{l,e} ≥ v_{l,e}` and `Σ_{edges of i} β ≤ c_i`; splitting each
/// facility's cost over its edges in proportion to value
/// (`β = c_i · v / Σ v`) and setting `α_l = max_e (v − β)⁺` is feasible
/// by construction, so `Σ_l α_l` bounds the LP — and hence the integer —
/// optimum by weak duality. The `β = 0` choice recovers the trivial
/// value-sum bound `Σ_l max_e v`, so this is never looser than that.
fn fast_dual_bound(p: &WelfareProblem) -> f64 {
    let mut value_mass = vec![0.0f64; p.num_facilities()];
    for cands in &p.client_values {
        for &(f, v) in cands {
            value_mass[f] += v;
        }
    }
    p.client_values
        .iter()
        .map(|cands| {
            cands
                .iter()
                .map(|&(f, v)| {
                    let beta = if value_mass[f] > 0.0 {
                        p.facility_cost[f] * v / value_mass[f]
                    } else {
                        0.0
                    };
                    (v - beta).max(0.0)
                })
                .fold(0.0, f64::max)
        })
        .sum()
}

/// facility → [(client, value)] adjacency.
fn facility_adjacency(p: &WelfareProblem) -> Vec<Vec<(usize, f64)>> {
    let mut adj = vec![Vec::new(); p.num_facilities()];
    for (l, cands) in p.client_values.iter().enumerate() {
        for &(f, v) in cands {
            adj[f].push((l, v));
        }
    }
    adj
}

/// Disjoint-set union for component decomposition.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Deterministic: smaller root wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Exhaustive welfare maximization for tests (≤ 20 facilities).
pub fn solve_exhaustive(p: &WelfareProblem) -> WelfareSolution {
    let nf = p.num_facilities();
    assert!(nf <= 20, "exhaustive limited to 20 facilities");
    let mut best_open = vec![false; nf];
    let mut best = 0.0f64; // empty set welfare
    for mask in 1u64..(1 << nf) {
        let open: Vec<bool> = (0..nf).map(|f| mask & (1 << f) != 0).collect();
        let w = p.welfare_of(&open);
        if w > best {
            best = w;
            best_open = open;
        }
    }
    let mut sol = p.solution_from_open(&best_open);
    sol.status = SolveStatus::Optimal;
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Duration;

    fn tiny_instance() -> WelfareProblem {
        // 2 facilities (cost 3), 2 clients.
        // client 0: f0=5, f1=4 ; client 1: f0=1, f1=4.
        WelfareProblem::new(
            vec![3.0, 3.0],
            vec![vec![(0, 5.0), (1, 4.0)], vec![(0, 1.0), (1, 4.0)]],
        )
    }

    /// The classic integrality-gap triangle: three facilities covering
    /// pairs of three clients. Integer optimum 2 (one open facility), LP
    /// optimum 3 (all three at x = ½) — guaranteed fractional root.
    fn gap_triangle() -> WelfareProblem {
        WelfareProblem::new(
            vec![4.0, 4.0, 4.0],
            vec![
                vec![(0, 3.0), (2, 3.0)],
                vec![(0, 3.0), (1, 3.0)],
                vec![(1, 3.0), (2, 3.0)],
            ],
        )
    }

    #[test]
    fn welfare_of_matches_manual() {
        let p = tiny_instance();
        assert_eq!(p.welfare_of(&[true, false]), 5.0 + 1.0 - 3.0);
        assert_eq!(p.welfare_of(&[false, true]), 4.0 + 4.0 - 3.0);
        assert_eq!(p.welfare_of(&[true, true]), 5.0 + 4.0 - 6.0);
        assert_eq!(p.welfare_of(&[false, false]), 0.0);
    }

    #[test]
    fn exact_solves_tiny_instance() {
        let p = tiny_instance();
        let sol = solve_exact(&p, &SolveOptions::default());
        assert!(sol.proven_optimal());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.welfare, 5.0);
        assert_eq!(sol.open, vec![false, true]);
        assert_eq!(sol.assignment, vec![Some(1), Some(1)]);
        assert!(sol.lp_bound.expect("bound computed") >= 5.0 - 1e-9);
    }

    #[test]
    fn local_search_matches_optimum_on_tiny() {
        let p = tiny_instance();
        let sol = solve_local_search(&p, 0.01);
        assert_eq!(sol.welfare, 5.0);
    }

    #[test]
    fn greedy_reaches_positive_welfare() {
        let p = tiny_instance();
        let sol = solve_greedy(&p);
        assert!(sol.welfare > 0.0);
    }

    #[test]
    fn unaffordable_sensors_yield_empty_solution() {
        // All values below cost → best is to select nothing (the paper's
        // baseline observation at budgets 7–10 with C_s = 10).
        let p = WelfareProblem::new(vec![10.0, 10.0], vec![vec![(0, 6.0)], vec![(1, 7.0)]]);
        let exact = solve_exact(&p, &SolveOptions::default());
        assert_eq!(exact.welfare, 0.0);
        assert!(exact.open.iter().all(|&o| !o));
        let ls = solve_local_search(&p, 0.01);
        assert_eq!(ls.welfare, 0.0);
    }

    #[test]
    fn sharing_makes_unaffordable_sensors_affordable() {
        // Two clients, each worth 6 < cost 10, but together 12 > 10.
        let p = WelfareProblem::new(vec![10.0], vec![vec![(0, 6.0)], vec![(0, 6.0)]]);
        let exact = solve_exact(&p, &SolveOptions::default());
        assert_eq!(exact.welfare, 2.0);
        assert_eq!(exact.open, vec![true]);
    }

    #[test]
    fn dead_facilities_are_pruned_from_solutions() {
        let p = WelfareProblem::new(vec![1.0, 1.0], vec![vec![(0, 5.0), (1, 4.0)]]);
        // Force both open through welfare_of vs solution_from_open.
        let sol = p.solution_from_open(&[true, true]);
        assert_eq!(sol.open, vec![true, false]);
        assert_eq!(sol.welfare, 4.0);
    }

    #[test]
    fn components_solve_independently() {
        // Two disjoint copies of the tiny instance.
        let p = WelfareProblem::new(
            vec![3.0, 3.0, 3.0, 3.0],
            vec![
                vec![(0, 5.0), (1, 4.0)],
                vec![(0, 1.0), (1, 4.0)],
                vec![(2, 5.0), (3, 4.0)],
                vec![(2, 1.0), (3, 4.0)],
            ],
        );
        let sol = solve_exact(&p, &SolveOptions::default());
        assert!(sol.proven_optimal());
        assert_eq!(sol.welfare, 10.0);
        assert_eq!(sol.open, vec![false, true, false, true]);
    }

    /// Satellite: a node-limited solve is `LimitReached` with a feasible
    /// incumbent — never confusable with `Infeasible` or an empty bogus
    /// answer.
    #[test]
    fn node_limited_solve_keeps_heuristic_incumbent() {
        let p = gap_triangle();
        let sol = solve_exact(&p, &SolveOptions::default().with_max_nodes(0));
        assert_eq!(sol.status, SolveStatus::LimitReached);
        assert!(!sol.proven_optimal());
        // Local search already finds the single-facility optimum (2.0);
        // the limited solve must preserve it.
        assert!((sol.welfare - 2.0).abs() < 1e-9);
        assert_eq!(sol.open.iter().filter(|&&o| o).count(), 1);
        // And the fractional root bound (3.0) is reported.
        let bound = sol.lp_bound.expect("bound present");
        assert!((bound - 3.0).abs() < 1e-6, "bound {bound}");
    }

    #[test]
    fn full_budget_closes_the_gap_triangle() {
        let p = gap_triangle();
        let sol = solve_exact(&p, &SolveOptions::default());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.welfare - 2.0).abs() < 1e-9);
    }

    /// Satellite (anytime contract): an expired deadline still returns a
    /// feasible solution at least as good as local search.
    #[test]
    fn expired_deadline_returns_local_search_quality() {
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..10 {
            let p = random_instance(&mut rng, 10, 12);
            let ls = solve_local_search(&p, 0.01);
            let opts = SolveOptions::default().with_deadline(Duration::ZERO);
            let sol = solve_exact(&p, &opts);
            assert!(
                matches!(sol.status, SolveStatus::Feasible | SolveStatus::Optimal),
                "status {:?}",
                sol.status
            );
            assert!(sol.welfare >= ls.welfare - 1e-9);
            assert!(sol.welfare <= sol.lp_bound.unwrap() + 1e-9);
        }
    }

    #[test]
    fn warm_open_hint_survives_limited_solve() {
        let p = gap_triangle();
        // Hint the optimum; even a zero-node solve must keep it.
        let opts = SolveOptions {
            warm_start: WarmStart {
                incumbent: Some(vec![true, false, false]),
                basis: None,
            },
            ..SolveOptions::default().with_max_nodes(0)
        };
        let sol = solve_exact(&p, &opts);
        assert!((sol.welfare - 2.0).abs() < 1e-9);
    }

    fn random_instance(rng: &mut StdRng, nf: usize, nc: usize) -> WelfareProblem {
        let costs: Vec<f64> = (0..nf).map(|_| rng.gen_range(2.0..12.0)).collect();
        let clients: Vec<Vec<(usize, f64)>> = (0..nc)
            .map(|_| {
                let mut list = Vec::new();
                for f in 0..nf {
                    if rng.gen_bool(0.5) {
                        list.push((f, rng.gen_range(0.5..9.0)));
                    }
                }
                list
            })
            .collect();
        WelfareProblem::new(costs, clients)
    }

    #[test]
    fn exact_matches_exhaustive_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..40 {
            let p = random_instance(&mut rng, 8, 10);
            let ex = solve_exhaustive(&p);
            let bb = solve_exact(&p, &SolveOptions::default());
            assert!(bb.proven_optimal(), "trial {trial} not proven");
            assert!(
                (bb.welfare - ex.welfare).abs() < 1e-7,
                "trial {trial}: bb={} exhaustive={}",
                bb.welfare,
                ex.welfare
            );
            assert!(
                bb.lp_bound.unwrap() >= ex.welfare - 1e-7,
                "trial {trial}: bound below optimum"
            );
        }
    }

    #[test]
    fn exact_matches_general_bilp_formulation() {
        // Cross-validate the component path against a monolithic solve of
        // the literal Eq. 9 BILP over [X_i | Y_{l,e}].
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let p = random_instance(&mut rng, 5, 6);
            let bp = p.to_bilp();
            let bilp_sol = bilp::solve(&bp, &SolveOptions::default());
            let ufl_sol = solve_exact(&p, &SolveOptions::default());
            assert!(
                (bilp_sol.objective.max(0.0) - ufl_sol.welfare).abs() < 1e-6,
                "bilp={} ufl={}",
                bilp_sol.objective,
                ufl_sol.welfare
            );
        }
    }

    #[test]
    fn fast_dual_bound_is_valid_and_beats_value_sum() {
        let mut rng = StdRng::seed_from_u64(4242);
        for trial in 0..60 {
            let p = random_instance(&mut rng, 8, 10);
            let dual = fast_dual_bound(&p);
            let value_sum: f64 = p
                .client_values
                .iter()
                .map(|cands| cands.iter().map(|&(_, v)| v).fold(0.0, f64::max))
                .sum();
            let opt = solve_exhaustive(&p);
            assert!(
                dual >= opt.welfare - 1e-7,
                "trial {trial}: dual bound {dual} below optimum {}",
                opt.welfare
            );
            assert!(
                dual <= value_sum + 1e-9,
                "trial {trial}: dual bound {dual} looser than value sum {value_sum}"
            );
        }
    }

    /// The size guard: a single giant connected component past
    /// `MAX_EXACT_VARS` must bypass the tableau (fast), keep a feasible
    /// incumbent no worse than local search, report `LimitReached`, and
    /// still carry a certified bound.
    #[test]
    fn oversized_component_bypasses_tableau() {
        let mut rng = StdRng::seed_from_u64(77);
        let nf = 60;
        let costs: Vec<f64> = (0..nf).map(|_| rng.gen_range(2.0..12.0)).collect();
        // Dense enough that nf + edges ≫ MAX_EXACT_VARS and the graph is
        // one component with overwhelming probability.
        let clients: Vec<Vec<(usize, f64)>> = (0..200)
            .map(|_| {
                let mut list = Vec::new();
                for f in 0..nf {
                    if rng.gen_bool(0.2) {
                        list.push((f, rng.gen_range(0.5..9.0)));
                    }
                }
                list
            })
            .collect();
        let p = WelfareProblem::new(costs, clients);
        assert!(bilp_vars(&p) > MAX_EXACT_VARS, "instance not oversized");

        let start = Instant::now();
        let sol = solve_exact(&p, &SolveOptions::default());
        let elapsed = start.elapsed();
        assert_eq!(sol.status, SolveStatus::LimitReached);
        let ls = solve_local_search(&p, 0.01);
        assert!(sol.welfare >= ls.welfare - 1e-9);
        assert!(sol.welfare <= sol.lp_bound.expect("bound present") + 1e-9);
        assert!(
            elapsed < Duration::from_secs(5),
            "guarded solve took {elapsed:?}"
        );

        // The standalone bound path takes the same shortcut and stays
        // consistent with the achieved welfare.
        let bound = lp_relaxation_bound(&p, simplex::DEFAULT_MAX_PIVOTS);
        assert!(sol.welfare <= bound + 1e-9);
    }

    #[test]
    fn lp_relaxation_bound_is_valid_upper_bound() {
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..60 {
            let p = random_instance(&mut rng, 7, 9);
            let bound = lp_relaxation_bound(&p, simplex::DEFAULT_MAX_PIVOTS);
            let opt = solve_exhaustive(&p);
            assert!(
                bound >= opt.welfare - 1e-7,
                "bound {bound} below optimum {}",
                opt.welfare
            );
        }
    }

    #[test]
    fn local_search_never_beats_exact_and_is_nonnegative() {
        let mut rng = StdRng::seed_from_u64(5150);
        for _ in 0..30 {
            let p = random_instance(&mut rng, 10, 12);
            let ls = solve_local_search(&p, 0.01);
            let ex = solve_exact(&p, &SolveOptions::default());
            assert!(ls.welfare <= ex.welfare + 1e-7);
            assert!(ls.welfare >= 0.0);
        }
    }

    #[test]
    fn assignments_point_to_open_facilities() {
        let mut rng = StdRng::seed_from_u64(31337);
        let p = random_instance(&mut rng, 12, 15);
        let sol = solve_exact(&p, &SolveOptions::default());
        for (l, a) in sol.assignment.iter().enumerate() {
            if let Some(f) = a {
                assert!(sol.open[*f], "client {l} assigned to closed facility");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn exact_at_least_local_search(seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = random_instance(&mut rng, 9, 11);
            let ls = solve_local_search(&p, 0.01);
            let ex = solve_exact(&p, &SolveOptions::default());
            prop_assert!(ex.welfare + 1e-7 >= ls.welfare);
            let brute = solve_exhaustive(&p);
            prop_assert!((ex.welfare - brute.welfare).abs() < 1e-6);
        }
    }
}
