//! Optimization engines for utility-driven sensor scheduling.
//!
//! The paper needs three optimization primitives:
//!
//! 1. **An exact solver for the single-sensor point-query BILP (Eq. 9).**
//!    The program is an uncapacitated-facility-location-style welfare
//!    maximization: opening sensor `i` costs `c_i`, and each queried
//!    location `l` collects the value of the best open sensor. [`ufl`]
//!    implements an exact branch-and-bound with Erlenkotter-style
//!    dual-ascent bounds plus connected-component decomposition, and
//!    [`bilp`]/[`lp`] provide the general BILP + simplex machinery the
//!    paper's formulation corresponds to (also used to cross-validate the
//!    specialized solver).
//! 2. **The Local Search approximation of Feige, Mirrokni & Vondrák
//!    (FOCS'07)** for non-monotone submodular maximization, which the paper
//!    uses as its scalable heuristic for point-query scheduling
//!    ([`submodular::local_search`] for black-box set functions and
//!    [`ufl::solve_local_search`] for the specialized incremental variant).
//! 3. **Greedy marginal-gain selection** (Algorithm 1's engine), provided
//!    generically in [`submodular::greedy`].
//!
//! Everything here is deterministic: ties break on the lowest index, so
//! simulations are reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bilp;
pub mod bitset;
pub mod lp;
pub mod submodular;
pub mod ufl;

pub use bilp::{BilpProblem, BilpSolution, BilpStatus};
pub use bitset::BitSet;
pub use lp::{Constraint, ConstraintOp, LpError, LpProblem, LpSolution};
pub use ufl::{SolveLimits, WelfareProblem, WelfareSolution};
