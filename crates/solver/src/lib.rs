//! Optimization engines for utility-driven sensor scheduling.
//!
//! The paper needs three optimization primitives:
//!
//! 1. **An exact solver for the single-sensor point-query BILP (Eq. 9).**
//!    The program is an uncapacitated-facility-location-style welfare
//!    maximization: opening sensor `i` costs `c_i`, and each queried
//!    location `l` collects the value of the best open sensor. The solver
//!    core is layered: [`simplex`] is a two-phase (phase-I feasibility /
//!    phase-II optimize) dense-tableau simplex with Bland's-rule
//!    anti-cycling, pivot budgets, and warm-start bases; [`bilp`] is a
//!    best-bound branch-and-bound over its LP relaxations (most-fractional
//!    branching, incumbent tracking, so every solve is *anytime*); and
//!    [`ufl`] specializes both to Eq. 9 via connected-component
//!    decomposition with heuristic incumbent seeding.
//! 2. **The Local Search approximation of Feige, Mirrokni & Vondrák
//!    (FOCS'07)** for non-monotone submodular maximization, which the paper
//!    uses as its scalable heuristic for point-query scheduling
//!    ([`submodular::local_search`] for black-box set functions and
//!    [`ufl::solve_local_search`] for the specialized incremental variant).
//! 3. **Greedy marginal-gain selection** (Algorithm 1's engine), provided
//!    generically in [`submodular::greedy`].
//!
//! Every solve surfaces a [`SolveStatus`] — `Optimal`, `Feasible`
//! (incumbent under a deadline), `Infeasible`, `Unbounded`, or
//! `LimitReached` (node/pivot budget) — and resource limits flow through
//! [`SolveOptions`], so callers can always distinguish "proven
//! infeasible" from "ran out of budget with a usable incumbent".
//!
//! Everything here is deterministic at default options: ties break on the
//! lowest index, so simulations are reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bilp;
pub mod bitset;
pub mod simplex;
pub mod submodular;
pub mod ufl;

pub use bilp::{BilpProblem, BilpSolution, SolveOptions, SolveStatus, WarmStart};
pub use bitset::BitSet;
pub use simplex::{Basis, Constraint, ConstraintOp, LpOutcome, LpProblem, LpStatus};
pub use ufl::{WelfareProblem, WelfareSolution};
