//! Descriptive statistics for experiment metrics.

/// Summary statistics of a sample, computed in one pass (Welford's
/// algorithm for numerically stable variance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Unbiased sample variance (0 for fewer than two observations).
    pub variance: f64,
    /// Minimum observation (+∞ for an empty sample).
    pub min: f64,
    /// Maximum observation (−∞ for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice of observations.
    pub fn of(data: &[f64]) -> Self {
        let mut count = 0usize;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in data {
            count += 1;
            let delta = x - mean;
            mean += delta / count as f64;
            m2 += delta * (x - mean);
            min = min.min(x);
            max = max.max(x);
        }
        let variance = if count > 1 {
            m2 / (count as f64 - 1.0)
        } else {
            0.0
        };
        Self {
            count,
            mean: if count == 0 { 0.0 } else { mean },
            variance,
            min,
            max,
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean (0 for an empty sample).
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        0.0
    } else {
        data.iter().sum::<f64>() / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample variance with n−1 = 7: Σ(x−5)² = 32 → 32/7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_sample_is_safe() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn mean_helper_matches_summary() {
        let data = [1.0, 2.0, 3.5];
        assert!((mean(&data) - Summary::of(&data).mean).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn welford_matches_two_pass(data in proptest::collection::vec(-100.0..100.0f64, 2..50)) {
            let s = Summary::of(&data);
            let m = data.iter().sum::<f64>() / data.len() as f64;
            let v = data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (data.len() as f64 - 1.0);
            prop_assert!((s.mean - m).abs() < 1e-9);
            prop_assert!((s.variance - v).abs() < 1e-7);
        }

        #[test]
        fn min_le_mean_le_max(data in proptest::collection::vec(-100.0..100.0f64, 1..50)) {
            let s = Summary::of(&data);
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
        }
    }
}
