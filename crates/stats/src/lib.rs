//! Statistics substrate: linear regression over pluggable bases,
//! residual-driven sampling-time selection, time series, and descriptive
//! statistics.
//!
//! The location-monitoring experiments (§4.5 of the paper) valuate sampled
//! time sets through a linear-regression model (Eqs. 16–17) and choose the
//! *desired* sampling times with the technique of OptiMos (ref. \[19]):
//! pick the `k` timestamps whose induced model minimizes residuals against
//! the full historical trace. Both live here, built on `ps-linalg`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptive;
pub mod regression;
pub mod sampling;
pub mod series;

pub use descriptive::Summary;
pub use regression::{Basis, DiurnalBasis, LinearModel, PolynomialBasis};
pub use sampling::{g_factor, select_sampling_times};
pub use series::TimeSeries;
