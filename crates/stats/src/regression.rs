//! Linear regression over pluggable feature bases.
//!
//! §4.5 of the paper: "A linear regression model is used to model the
//! data" — the valuation of a location-monitoring query compares the
//! residuals of models trained on the desired sampling times versus the
//! actually-sampled times (Eq. 17). [`LinearModel::fit`] solves the ridge
//! normal equations through `ps-linalg`; underdetermined fits (fewer
//! samples than features) are regularized rather than rejected, because
//! early in a query's lifetime very few samples exist — the model then
//! simply has large residuals, which is exactly the signal Eq. 17 needs.

use ps_linalg::{solve_spd, Matrix};

/// A feature basis mapping a timestamp to a feature vector.
pub trait Basis {
    /// Number of features.
    fn dim(&self) -> usize;
    /// Writes the features of `t` into `out` (`out.len() == dim()`).
    fn features_into(&self, t: f64, out: &mut [f64]);

    /// Convenience allocation-returning variant.
    fn features(&self, t: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.features_into(t, &mut out);
        out
    }
}

/// Polynomial basis `1, t, t², …, t^degree`.
#[derive(Debug, Clone, Copy)]
pub struct PolynomialBasis {
    /// Highest power of `t` included.
    pub degree: usize,
}

impl Basis for PolynomialBasis {
    fn dim(&self) -> usize {
        self.degree + 1
    }

    fn features_into(&self, t: f64, out: &mut [f64]) {
        let mut p = 1.0;
        for slot in out.iter_mut() {
            *slot = p;
            p *= t;
        }
    }
}

/// Diurnal basis: intercept, linear trend, and harmonic pairs of a daily
/// period — the natural linear model for ozone-style phenomena whose
/// day-over-day pattern the sampling-time selection of ref. \[19] exploits.
#[derive(Debug, Clone, Copy)]
pub struct DiurnalBasis {
    /// Length of one day in time-slot units.
    pub period: f64,
    /// Number of harmonic (sin, cos) pairs.
    pub harmonics: usize,
}

impl Basis for DiurnalBasis {
    fn dim(&self) -> usize {
        2 + 2 * self.harmonics
    }

    fn features_into(&self, t: f64, out: &mut [f64]) {
        out[0] = 1.0;
        out[1] = t / self.period; // scaled trend keeps the Gram matrix tame
        let omega = std::f64::consts::TAU / self.period;
        for h in 0..self.harmonics {
            let k = (h + 1) as f64;
            out[2 + 2 * h] = (k * omega * t).sin();
            out[3 + 2 * h] = (k * omega * t).cos();
        }
    }
}

/// A fitted linear model `y ≈ coeffs · features(t)`.
#[derive(Debug, Clone)]
pub struct LinearModel {
    coeffs: Vec<f64>,
}

impl LinearModel {
    /// Fits by ridge-regularized least squares on `(times, values)`.
    ///
    /// `ridge` is added to the Gram diagonal; `1e-8` is a good default.
    /// With zero samples, the model predicts 0 everywhere.
    ///
    /// # Panics
    /// Panics when `times.len() != values.len()`.
    pub fn fit<B: Basis>(basis: &B, times: &[f64], values: &[f64], ridge: f64) -> Self {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        let d = basis.dim();
        if times.is_empty() {
            return Self {
                coeffs: vec![0.0; d],
            };
        }
        let mut x = Matrix::zeros(times.len(), d);
        for (i, &t) in times.iter().enumerate() {
            basis.features_into(t, x.row_mut(i));
        }
        let mut gram = x.gram();
        gram.add_diagonal(ridge.max(1e-10));
        let rhs = x.matvec_transposed(values);
        let coeffs = solve_spd(&gram, &rhs).unwrap_or_else(|_| vec![0.0; d]);
        Self { coeffs }
    }

    /// Model coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Predicted value at time `t`.
    pub fn predict<B: Basis>(&self, basis: &B, t: f64) -> f64 {
        let mut feats = vec![0.0; basis.dim()];
        basis.features_into(t, &mut feats);
        ps_linalg::dot(&feats, &self.coeffs)
    }

    /// Residual sum of squares against `(times, values)` — the
    /// `Σ r²ᵢ` of Eq. 17. One feature buffer is reused across the whole
    /// series (this runs over the full history for every Eq. 17 `G`
    /// evaluation, so a per-point allocation here dominated monitoring
    /// slots).
    pub fn rss<B: Basis>(&self, basis: &B, times: &[f64], values: &[f64]) -> f64 {
        assert_eq!(times.len(), values.len());
        let mut feats = vec![0.0; basis.dim()];
        times
            .iter()
            .zip(values)
            .map(|(&t, &y)| {
                basis.features_into(t, &mut feats);
                let r = y - ps_linalg::dot(&feats, &self.coeffs);
                r * r
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fits_exact_line() {
        let basis = PolynomialBasis { degree: 1 };
        let times: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let values: Vec<f64> = times.iter().map(|t| 3.0 + 2.0 * t).collect();
        let m = LinearModel::fit(&basis, &times, &values, 1e-10);
        assert!((m.coeffs()[0] - 3.0).abs() < 1e-4);
        assert!((m.coeffs()[1] - 2.0).abs() < 1e-5);
        assert!(m.rss(&basis, &times, &values) < 1e-6);
    }

    #[test]
    fn empty_fit_predicts_zero() {
        let basis = PolynomialBasis { degree: 2 };
        let m = LinearModel::fit(&basis, &[], &[], 1e-8);
        assert_eq!(m.predict(&basis, 5.0), 0.0);
    }

    #[test]
    fn underdetermined_fit_is_finite() {
        // One sample, three features: ridge keeps it solvable.
        let basis = PolynomialBasis { degree: 2 };
        let m = LinearModel::fit(&basis, &[2.0], &[8.0], 1e-6);
        let p = m.predict(&basis, 2.0);
        assert!(p.is_finite());
        // Ridge fit through one point should still pass near it.
        assert!((p - 8.0).abs() < 1.0);
    }

    #[test]
    fn diurnal_basis_recovers_sinusoid() {
        let basis = DiurnalBasis {
            period: 24.0,
            harmonics: 1,
        };
        let times: Vec<f64> = (0..96).map(|i| i as f64 * 0.5).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|&t| 10.0 + 4.0 * (std::f64::consts::TAU * t / 24.0).sin())
            .collect();
        let m = LinearModel::fit(&basis, &times, &values, 1e-8);
        assert!(m.rss(&basis, &times, &values) < 1e-6);
        // Predictions at unseen points are accurate.
        let t = 3.21;
        let want = 10.0 + 4.0 * (std::f64::consts::TAU * t / 24.0).sin();
        assert!((m.predict(&basis, t) - want).abs() < 1e-4);
    }

    #[test]
    fn rss_decreases_with_more_informative_training() {
        let basis = DiurnalBasis {
            period: 24.0,
            harmonics: 1,
        };
        let all_times: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let values: Vec<f64> = all_times
            .iter()
            .map(|&t| 5.0 + 2.0 * (std::f64::consts::TAU * t / 24.0).cos())
            .collect();
        // Train on 4 vs 24 points.
        let few = LinearModel::fit(&basis, &all_times[..4], &values[..4], 1e-8);
        let many = LinearModel::fit(&basis, &all_times[..24], &values[..24], 1e-8);
        let rss_few = few.rss(&basis, &all_times, &values);
        let rss_many = many.rss(&basis, &all_times, &values);
        assert!(rss_many <= rss_few + 1e-9);
    }

    #[test]
    fn polynomial_features_shape() {
        let b = PolynomialBasis { degree: 3 };
        assert_eq!(b.dim(), 4);
        assert_eq!(b.features(2.0), vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn diurnal_features_shape() {
        let b = DiurnalBasis {
            period: 24.0,
            harmonics: 2,
        };
        assert_eq!(b.dim(), 6);
        let f = b.features(0.0);
        assert_eq!(f[0], 1.0);
        assert_eq!(f[1], 0.0);
        assert_eq!(f[2], 0.0); // sin 0
        assert_eq!(f[3], 1.0); // cos 0
    }

    proptest! {
        #[test]
        fn fitted_line_rss_below_mean_model(
            slope in -3.0..3.0f64,
            icept in -5.0..5.0f64,
            noise_scale in 0.0..0.5f64,
        ) {
            let basis = PolynomialBasis { degree: 1 };
            let times: Vec<f64> = (0..20).map(|i| i as f64).collect();
            // Deterministic pseudo-noise keeps the test reproducible.
            let values: Vec<f64> = times
                .iter()
                .map(|&t| icept + slope * t + noise_scale * (t * 12.9898).sin())
                .collect();
            let m = LinearModel::fit(&basis, &times, &values, 1e-8);
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let rss_mean: f64 = values.iter().map(|v| (v - mean).powi(2)).sum();
            prop_assert!(m.rss(&basis, &times, &values) <= rss_mean + 1e-6);
        }
    }
}
