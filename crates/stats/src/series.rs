//! Time series with interpolation — the "historical data" the
//! location-monitoring valuation regresses against.

/// A time series with strictly increasing timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from parallel `times`/`values` vectors.
    ///
    /// # Panics
    /// Panics when lengths differ or timestamps are not strictly
    /// increasing.
    pub fn new(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "timestamps must be strictly increasing"
        );
        Self { times, values }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Timestamps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Value at time `t` by linear interpolation; clamps to the first/last
    /// value outside the observed range.
    ///
    /// # Panics
    /// Panics on an empty series.
    pub fn value_at(&self, t: f64) -> f64 {
        assert!(!self.is_empty(), "value_at on empty series");
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= *self.times.last().expect("non-empty") {
            return *self.values.last().expect("non-empty");
        }
        // Binary search for the bracketing interval.
        let idx = self.times.partition_point(|&x| x <= t);
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        let alpha = (t - t0) / (t1 - t0);
        v0 + alpha * (v1 - v0)
    }

    /// The sub-series with `start <= t <= end`.
    pub fn window(&self, start: f64, end: f64) -> TimeSeries {
        let mut times = Vec::new();
        let mut values = Vec::new();
        for (t, v) in self.iter() {
            if t >= start && t <= end {
                times.push(t);
                values.push(v);
            }
        }
        TimeSeries { times, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ramp() -> TimeSeries {
        TimeSeries::new(vec![0.0, 1.0, 2.0, 4.0], vec![0.0, 10.0, 20.0, 40.0])
    }

    #[test]
    fn value_at_interpolates_linearly() {
        let s = ramp();
        assert_eq!(s.value_at(0.5), 5.0);
        assert_eq!(s.value_at(3.0), 30.0);
    }

    #[test]
    fn value_at_clamps_outside_range() {
        let s = ramp();
        assert_eq!(s.value_at(-1.0), 0.0);
        assert_eq!(s.value_at(99.0), 40.0);
    }

    #[test]
    fn value_at_exact_timestamps() {
        let s = ramp();
        for (t, v) in s.iter() {
            assert_eq!(s.value_at(t), v);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_times_rejected() {
        let _ = TimeSeries::new(vec![0.0, 2.0, 1.0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn window_selects_inclusive_range() {
        let s = ramp();
        let w = s.window(1.0, 2.0);
        assert_eq!(w.times(), &[1.0, 2.0]);
        assert_eq!(w.values(), &[10.0, 20.0]);
    }

    proptest! {
        #[test]
        fn interpolation_is_bounded_by_neighbours(t in 0.0..4.0f64) {
            let s = ramp();
            let v = s.value_at(t);
            prop_assert!((-1e-9..=40.0 + 1e-9).contains(&v));
        }
    }
}
