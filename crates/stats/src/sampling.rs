//! Residual-driven sampling-time selection (OptiMos, ref. \[19]) and the
//! `G` quality factor of Eq. 17.
//!
//! The paper determines the *desired* sampling times `T` of a location
//! monitoring query by working "on the historical data and select\[ing] the
//! sampling times such that the residuals of the model based on the values
//! at the sampling times and the model given all the historical data is
//! minimized" — with the number of sampling times fixed in advance. The
//! valuation of the *achieved* samples `T'` is then the residual ratio
//!
//! ```text
//! G(T') = Σ r²ᵢ|T  /  Σ r²ᵢ|T'                                  (Eq. 17)
//! ```
//!
//! where `r_i|X` is the residual of the i-th historical item against a
//! model trained only on timestamps in `X`.

use crate::regression::{Basis, LinearModel};
use crate::series::TimeSeries;

const RIDGE: f64 = 1e-8;

/// Greedily selects `k` sampling times from `candidates` so that a model
/// trained on (the historical values at) the selected times minimizes the
/// residual sum of squares against the whole `history`.
///
/// Ties break toward the earlier candidate; returned times are sorted.
pub fn select_sampling_times<B: Basis>(
    basis: &B,
    history: &TimeSeries,
    candidates: &[f64],
    k: usize,
) -> Vec<f64> {
    let k = k.min(candidates.len());
    if k == 0 || history.is_empty() {
        return Vec::new();
    }
    let mut chosen: Vec<f64> = Vec::with_capacity(k);
    let mut remaining: Vec<f64> = candidates.to_vec();

    for _ in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for (idx, &cand) in remaining.iter().enumerate() {
            chosen.push(cand);
            let rss = rss_of_training_times(basis, history, &chosen);
            chosen.pop();
            match best {
                Some((_, b)) if b <= rss => {}
                _ => best = Some((idx, rss)),
            }
        }
        let (idx, _) = best.expect("remaining non-empty while k not reached");
        chosen.push(remaining.remove(idx));
    }
    chosen.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    chosen
}

/// Residual sum of squares of the whole history under a model trained only
/// on the history's values at `training_times` — the `Σ r²ᵢ|X` of Eq. 17.
///
/// With no training times, the model predicts 0 everywhere, so the RSS is
/// the raw energy of the series (maximally bad), which is the desired
/// behaviour for `G(∅)`.
pub fn rss_of_training_times<B: Basis>(
    basis: &B,
    history: &TimeSeries,
    training_times: &[f64],
) -> f64 {
    let values: Vec<f64> = training_times
        .iter()
        .map(|&t| history.value_at(t))
        .collect();
    let model = LinearModel::fit(basis, training_times, &values, RIDGE);
    model.rss(basis, history.times(), history.values())
}

/// The quality factor `G(T') = RSS|desired / RSS|sampled` of Eq. 17.
///
/// * `G = 0` when nothing has been sampled (infinite denominator in
///   spirit: a model with no data explains nothing).
/// * `G ≈ 1` when the sampled times are as informative as the desired
///   ones, and `G > 1` when they happen to be *more* informative.
/// * Guards against a zero denominator (perfect fit from `T'`) by
///   clamping to `G_MAX`.
pub fn g_factor<B: Basis>(
    basis: &B,
    history: &TimeSeries,
    desired_times: &[f64],
    sampled_times: &[f64],
) -> f64 {
    const G_MAX: f64 = 4.0;
    if sampled_times.is_empty() || history.is_empty() {
        return 0.0;
    }
    let rss_desired = rss_of_training_times(basis, history, desired_times);
    let rss_sampled = rss_of_training_times(basis, history, sampled_times);
    if rss_sampled <= 1e-12 {
        return G_MAX;
    }
    (rss_desired / rss_sampled).min(G_MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::DiurnalBasis;

    fn diurnal_history() -> TimeSeries {
        let times: Vec<f64> = (0..96).map(|i| i as f64 * 0.5).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|&t| 20.0 + 6.0 * (std::f64::consts::TAU * t / 24.0).sin())
            .collect();
        TimeSeries::new(times, values)
    }

    fn basis() -> DiurnalBasis {
        DiurnalBasis {
            period: 24.0,
            harmonics: 1,
        }
    }

    #[test]
    fn selects_requested_count() {
        let h = diurnal_history();
        let candidates: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let times = select_sampling_times(&basis(), &h, &candidates, 5);
        assert_eq!(times.len(), 5);
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn zero_k_gives_empty() {
        let h = diurnal_history();
        assert!(select_sampling_times(&basis(), &h, &[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn k_larger_than_candidates_is_clamped() {
        let h = diurnal_history();
        let times = select_sampling_times(&basis(), &h, &[1.0, 5.0], 10);
        assert_eq!(times.len(), 2);
    }

    #[test]
    fn selected_times_beat_random_prefix() {
        // The greedy choice should be at least as informative as naively
        // taking the first k candidates.
        let h = diurnal_history();
        let candidates: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let k = 4;
        let selected = select_sampling_times(&basis(), &h, &candidates, k);
        let naive: Vec<f64> = candidates[..k].to_vec();
        let rss_selected = rss_of_training_times(&basis(), &h, &selected);
        let rss_naive = rss_of_training_times(&basis(), &h, &naive);
        assert!(rss_selected <= rss_naive + 1e-9);
    }

    #[test]
    fn g_factor_empty_sampled_is_zero() {
        let h = diurnal_history();
        assert_eq!(g_factor(&basis(), &h, &[0.0, 6.0, 12.0], &[]), 0.0);
    }

    #[test]
    fn g_factor_of_same_set_is_one() {
        let h = diurnal_history();
        let t = vec![0.0, 6.0, 12.0, 18.0, 24.0];
        let g = g_factor(&basis(), &h, &t, &t);
        assert!((g - 1.0).abs() < 1e-9);
    }

    #[test]
    fn g_factor_grows_with_more_samples() {
        let h = diurnal_history();
        let desired = vec![0.0, 6.0, 12.0, 18.0];
        let few = vec![0.0, 6.0];
        let more = vec![0.0, 6.0, 12.0, 18.0];
        let g_few = g_factor(&basis(), &h, &desired, &few);
        let g_more = g_factor(&basis(), &h, &desired, &more);
        assert!(g_more >= g_few - 1e-9);
        assert!((g_more - 1.0).abs() < 1e-9);
    }

    #[test]
    fn g_factor_is_clamped() {
        let h = diurnal_history();
        // Sampled set far richer than a deliberately poor desired set.
        let desired = vec![0.0];
        let sampled: Vec<f64> = (0..24).map(|i| i as f64).collect();
        let g = g_factor(&basis(), &h, &desired, &sampled);
        assert!(g <= 4.0 + 1e-12);
        assert!(g >= 1.0);
    }
}
