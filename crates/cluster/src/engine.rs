//! The common slot-engine surface: one trait both the single
//! [`Aggregator`] and the sharded cluster implement.

use crate::cluster::ShardedAggregator;
use ps_core::aggregator::{
    AggregateSpec, Aggregator, LocationMonitorSpec, PointSpec, RegionMonitorSpec, RetiredMonitor,
    SlotReport, Totals,
};
use ps_core::model::{QueryId, SensorSnapshot, Slot};
use ps_core::monitor::location::LocationMonitor;
use ps_core::monitor::region::RegionMonitor;
use ps_core::payment::Ledger;
use ps_core::streaming::ArrivalEvent;

/// What a slot-stepped acquisition engine looks like from the outside:
/// query intake, one [`SlotEngine::step`] per tick, and cumulative
/// bookkeeping. Implemented by [`Aggregator`] (one engine, the paper's
/// service) and [`ShardedAggregator`] (a tiled cluster of them), so
/// workload generators and experiment drivers run unchanged against
/// either.
///
/// The trait is object-safe: drivers typically hold a
/// `Box<dyn SlotEngine + 's>` chosen at runtime from a shard-count knob.
pub trait SlotEngine {
    /// Submits an end-user point query for the next slot.
    fn submit_point(&mut self, spec: PointSpec) -> QueryId;

    /// Submits a spatial aggregate query for the next slot.
    fn submit_aggregate(&mut self, spec: AggregateSpec) -> QueryId;

    /// Submits a location-monitoring query (active `[t1, t2]`).
    fn submit_location_monitor(&mut self, spec: LocationMonitorSpec) -> QueryId;

    /// Submits a region-monitoring query (active `[t1, t2]`).
    fn submit_region_monitor(&mut self, spec: RegionMonitorSpec) -> QueryId;

    /// Executes one time slot against the announced sensors.
    fn step(&mut self, slot: Slot, sensors: &[SensorSnapshot]) -> SlotReport;

    /// Executes one time slot against a stream of intra-slot arrival
    /// events (queries and sensors stamped with ticks). A stream whose
    /// events all carry tick 0 in submission order is bit-identical to
    /// the batch [`SlotEngine::step`]; the report carries decision
    /// latencies in [`SlotReport::streaming`].
    fn step_streaming(&mut self, slot: Slot, events: &[ArrivalEvent]) -> SlotReport;

    /// Cumulative statistics since construction.
    fn totals(&self) -> &Totals;

    /// Cumulative money flows since construction.
    fn ledger(&self) -> &Ledger;

    /// Live location monitors (cluster: collated in shard order).
    fn location_monitors(&self) -> Vec<&LocationMonitor>;

    /// Live region monitors (cluster: collated in shard order).
    fn region_monitors(&self) -> Vec<&RegionMonitor>;

    /// Number of live location monitors.
    fn location_monitor_count(&self) -> usize {
        self.location_monitors().len()
    }

    /// Number of live region monitors.
    fn region_monitor_count(&self) -> usize {
        self.region_monitors().len()
    }

    /// Monitors whose window has elapsed (cluster: shard order).
    fn retired_monitors(&self) -> Vec<&RetiredMonitor>;

    /// Drops retained retired-monitor state (long-running services).
    fn clear_retired(&mut self);
}

impl<'s> SlotEngine for Aggregator<'s> {
    fn submit_point(&mut self, spec: PointSpec) -> QueryId {
        Aggregator::submit_point(self, spec)
    }

    fn submit_aggregate(&mut self, spec: AggregateSpec) -> QueryId {
        Aggregator::submit_aggregate(self, spec)
    }

    fn submit_location_monitor(&mut self, spec: LocationMonitorSpec) -> QueryId {
        Aggregator::submit_location_monitor(self, spec)
    }

    fn submit_region_monitor(&mut self, spec: RegionMonitorSpec) -> QueryId {
        Aggregator::submit_region_monitor(self, spec)
    }

    fn step(&mut self, slot: Slot, sensors: &[SensorSnapshot]) -> SlotReport {
        Aggregator::step(self, slot, sensors)
    }

    fn step_streaming(&mut self, slot: Slot, events: &[ArrivalEvent]) -> SlotReport {
        Aggregator::step_streaming(self, slot, events)
    }

    fn totals(&self) -> &Totals {
        Aggregator::totals(self)
    }

    fn ledger(&self) -> &Ledger {
        Aggregator::ledger(self)
    }

    fn location_monitors(&self) -> Vec<&LocationMonitor> {
        Aggregator::location_monitors(self).iter().collect()
    }

    fn region_monitors(&self) -> Vec<&RegionMonitor> {
        Aggregator::region_monitors(self).iter().collect()
    }

    fn location_monitor_count(&self) -> usize {
        Aggregator::location_monitors(self).len()
    }

    fn region_monitor_count(&self) -> usize {
        Aggregator::region_monitors(self).len()
    }

    fn retired_monitors(&self) -> Vec<&RetiredMonitor> {
        Aggregator::retired_monitors(self).iter().collect()
    }

    fn clear_retired(&mut self) {
        Aggregator::clear_retired(self)
    }
}

impl<'s> SlotEngine for ShardedAggregator<'s> {
    fn submit_point(&mut self, spec: PointSpec) -> QueryId {
        ShardedAggregator::submit_point(self, spec)
    }

    fn submit_aggregate(&mut self, spec: AggregateSpec) -> QueryId {
        ShardedAggregator::submit_aggregate(self, spec)
    }

    fn submit_location_monitor(&mut self, spec: LocationMonitorSpec) -> QueryId {
        ShardedAggregator::submit_location_monitor(self, spec)
    }

    fn submit_region_monitor(&mut self, spec: RegionMonitorSpec) -> QueryId {
        ShardedAggregator::submit_region_monitor(self, spec)
    }

    fn step(&mut self, slot: Slot, sensors: &[SensorSnapshot]) -> SlotReport {
        ShardedAggregator::step(self, slot, sensors)
    }

    fn step_streaming(&mut self, slot: Slot, events: &[ArrivalEvent]) -> SlotReport {
        ShardedAggregator::step_streaming(self, slot, events)
    }

    fn totals(&self) -> &Totals {
        ShardedAggregator::totals(self)
    }

    fn ledger(&self) -> &Ledger {
        ShardedAggregator::ledger(self)
    }

    fn location_monitors(&self) -> Vec<&LocationMonitor> {
        ShardedAggregator::location_monitors(self)
    }

    fn region_monitors(&self) -> Vec<&RegionMonitor> {
        ShardedAggregator::region_monitors(self)
    }

    fn location_monitor_count(&self) -> usize {
        ShardedAggregator::location_monitor_count(self)
    }

    fn region_monitor_count(&self) -> usize {
        ShardedAggregator::region_monitor_count(self)
    }

    fn retired_monitors(&self) -> Vec<&RetiredMonitor> {
        ShardedAggregator::retired_monitors(self)
    }

    fn clear_retired(&mut self) {
        ShardedAggregator::clear_retired(self)
    }
}
