//! The tiled multi-aggregator cluster: builder, routing, parallel
//! stepping, and the global settlement pass (see the [crate docs](crate)).

use ps_core::aggregator::{
    AggregateSpec, Aggregator, AggregatorBuilder, LocationMonitorSpec, MixBreakdown, PointSpec,
    RegionMonitorSpec, RetiredMonitor, SlotReport, Totals,
};
use ps_core::exec::Threads;
use ps_core::model::{QueryId, SensorSnapshot, Slot};
use ps_core::monitor::location::LocationMonitor;
use ps_core::monitor::region::RegionMonitor;
use ps_core::payment::Ledger;
use ps_core::streaming::{ArrivalEvent, ArrivalPayload, StreamStats};
use ps_core::valuation::quality::QualityModel;
use ps_core::valuation::{SetValuation, SpatialSupport};
use ps_geo::{Point, Rect, TileGrid};
use std::collections::{HashMap, HashSet};

/// Size of each shard's query-id block: shard `k` mints ids in
/// `[k · 2⁴⁰, (k + 1) · 2⁴⁰)`, so ids stay globally unique without any
/// cross-shard coordination (a shard would need to mint a trillion
/// queries to overrun its block; [`ShardedAggregator::step`] asserts it
/// never does).
pub const SHARD_ID_BLOCK: u64 = 1 << 40;

/// Per-shard builder configuration hook (applied to every shard's
/// [`AggregatorBuilder`] before the cluster overrides the thread count
/// and the id-block seed).
type ConfigureFn<'s> = Box<dyn Fn(AggregatorBuilder<'s>) -> AggregatorBuilder<'s> + 's>;

/// Configures and builds a [`ShardedAggregator`]. The type is
/// `#[must_use]` like [`AggregatorBuilder`]: chain methods take `self`,
/// so a dropped return value is dropped configuration.
///
/// # Example
///
/// ```rust
/// use ps_cluster::ClusterBuilder;
/// use ps_core::aggregator::PointSpec;
/// use ps_core::model::SensorSnapshot;
/// use ps_core::valuation::quality::QualityModel;
/// use ps_geo::{Point, Rect};
///
/// let sensors = vec![SensorSnapshot {
///     id: 0, loc: Point::new(20.0, 20.0), cost: 10.0, trust: 1.0, inaccuracy: 0.0,
/// }];
/// let mut cluster = ClusterBuilder::new(QualityModel::new(5.0), Rect::with_size(80.0, 80.0), 2)
///     .threads(2)
///     .build();
/// assert_eq!(cluster.shards().len(), 4);
/// cluster.submit_point(PointSpec { loc: Point::new(20.0, 20.0), budget: 15.0, theta_min: 0.2 });
/// let report = cluster.step(0, &sensors);
/// assert_eq!(report.breakdown.point_satisfied, 1);
/// assert_eq!(cluster.last_settlement().duplicates, 0);
/// ```
#[must_use = "builder methods take `self` — reassign or chain the result, or the configuration is dropped"]
pub struct ClusterBuilder<'s> {
    quality: QualityModel,
    arena: Rect,
    g: usize,
    halo: Option<f64>,
    threads: Threads,
    shard_threads: usize,
    configure: ConfigureFn<'s>,
}

impl<'s> ClusterBuilder<'s> {
    /// Starts a builder for a `g × g` cluster over `arena`, every shard
    /// running the Eq. 4 quality model. Defaults: halo =
    /// `max(d_max, sensing range)`, cluster fork-join threads
    /// auto-detected, one worker thread inside each shard engine, and
    /// shard engines at [`AggregatorBuilder::new`]'s defaults (customize
    /// with [`ClusterBuilder::configure_shards`]).
    ///
    /// # Panics
    /// [`ClusterBuilder::build`] panics (via [`TileGrid::new`]) when `g`
    /// is zero — the same loud rejection `repro --shards` gives, rather
    /// than a silent clamp.
    pub fn new(quality: QualityModel, arena: Rect, g: usize) -> Self {
        Self {
            quality,
            arena,
            g,
            halo: None,
            threads: Threads::default(),
            shard_threads: 1,
            configure: Box::new(|b| b),
        }
    }

    /// Overrides the halo width — the ring around each tile from which a
    /// shard still receives sensor announcements. The default,
    /// `max(d_max, sensing range)`, is the widest distance at which a
    /// tile-interior query can value a sensor, which is what makes
    /// tile-local workloads exact (see the [crate docs](crate)).
    pub fn halo(mut self, h: f64) -> Self {
        self.halo = Some(h.max(0.0));
        self
    }

    /// Worker threads for stepping shards in parallel (`0` = available
    /// parallelism). Purely a wall-clock knob: shards merge in ascending
    /// shard order, so every thread count produces bit-identical output.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Threads::new(n);
        self
    }

    /// Worker threads *inside* each shard engine (default 1: with the
    /// cluster already fanning out one thread per shard, serial shards
    /// avoid oversubscription). Any value keeps outputs bit-identical —
    /// the engine's own `threads` contract.
    pub fn shard_threads(mut self, n: usize) -> Self {
        self.shard_threads = n;
        self
    }

    /// Applies `f` to every shard's [`AggregatorBuilder`] — strategy,
    /// scheduler, sensing range, cost weighting, and so on. Called once
    /// per shard; the cluster then overrides the builder's `threads`
    /// (with [`ClusterBuilder::shard_threads`]) and `next_query_id` (the
    /// shard's id block), so those two knobs have no effect here.
    pub fn configure_shards(
        mut self,
        f: impl Fn(AggregatorBuilder<'s>) -> AggregatorBuilder<'s> + 's,
    ) -> Self {
        self.configure = Box::new(f);
        self
    }

    /// Builds the cluster: `g²` engines, one per tile, each minting query
    /// ids from its own [`SHARD_ID_BLOCK`].
    #[must_use = "dropping the built cluster discards all the configuration"]
    pub fn build(self) -> ShardedAggregator<'s> {
        let grid = TileGrid::new(self.arena, self.g);
        let shards: Vec<Aggregator<'s>> = (0..grid.len())
            .map(|k| {
                (self.configure)(AggregatorBuilder::new(self.quality))
                    .threads(self.shard_threads)
                    .next_query_id(k as u64 * SHARD_ID_BLOCK)
                    .build()
            })
            .collect();
        let halo = self
            .halo
            .unwrap_or_else(|| self.quality.d_max.max(shards[0].sensing_range()));
        ShardedAggregator {
            quality: self.quality,
            grid,
            halo,
            threads: self.threads,
            shards,
            ledger: Ledger::new(),
            totals: Totals::default(),
            last_settlement: Settlement::default(),
            total_settlement: Settlement::default(),
        }
    }
}

/// What the global settlement pass did to one slot (or cumulatively).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Settlement {
    /// Halo sensors selected by more than one shard (one count per
    /// losing shard, so a sensor bought by three shards counts twice).
    pub duplicates: usize,
    /// Total announced cost restored to welfare by deduplication.
    pub cost_restored: f64,
    /// Total payments refunded to losing shards' queries.
    pub refunded: f64,
}

impl Settlement {
    fn absorb(&mut self, other: &Settlement) {
        self.duplicates += other.duplicates;
        self.cost_restored += other.cost_restored;
        self.refunded += other.refunded;
    }
}

/// A tiled cluster of [`Aggregator`]s behind the single-engine API (see
/// the [crate docs](crate) for routing, halo, settlement, and the
/// exactness contract).
pub struct ShardedAggregator<'s> {
    quality: QualityModel,
    grid: TileGrid,
    halo: f64,
    threads: Threads,
    shards: Vec<Aggregator<'s>>,
    ledger: Ledger,
    totals: Totals,
    last_settlement: Settlement,
    total_settlement: Settlement,
}

impl<'s> ShardedAggregator<'s> {
    // ── Routing ───────────────────────────────────────────────────────

    /// The shard owning `support`'s anchor — where a query with that
    /// support is routed.
    pub fn shard_of(&self, support: &SpatialSupport) -> usize {
        self.grid.tile_of(support.anchor())
    }

    fn shard_of_point(&self, loc: Point) -> usize {
        self.shard_of(&SpatialSupport::Disk {
            center: loc,
            radius: self.quality.d_max,
        })
    }

    // ── Query intake (routed) ─────────────────────────────────────────

    /// Submits an end-user point query, routed by its `d_max`-disk
    /// support anchor (= its location).
    pub fn submit_point(&mut self, spec: PointSpec) -> QueryId {
        let k = self.shard_of_point(spec.loc);
        self.shards[k].submit_point(spec)
    }

    /// Submits a spatial aggregate query, routed by its expanded-rect
    /// support anchor (= its region centroid).
    pub fn submit_aggregate(&mut self, spec: AggregateSpec) -> QueryId {
        let k = self.shard_of(&SpatialSupport::Rect(spec.region));
        self.shards[k].submit_aggregate(spec)
    }

    /// Submits a location monitor, routed by the monitored location.
    pub fn submit_location_monitor(&mut self, spec: LocationMonitorSpec) -> QueryId {
        let k = self.shard_of_point(spec.loc);
        self.shards[k].submit_location_monitor(spec)
    }

    /// Submits a region monitor, routed by the monitored region's
    /// centroid.
    pub fn submit_region_monitor(&mut self, spec: RegionMonitorSpec) -> QueryId {
        let k = self.shard_of(&SpatialSupport::Rect(*spec.valuation.region()));
        self.shards[k].submit_region_monitor(spec)
    }

    /// Submits a custom [`SetValuation`], routed by its declared support.
    ///
    /// # Panics
    /// Panics when the valuation returns no
    /// [`support`](SetValuation::support): a support-less valuation is
    /// relevant everywhere and cannot be owned by one tile — run it on a
    /// single [`Aggregator`] instead.
    pub fn submit_valuation(&mut self, v: impl SetValuation + 's) -> QueryId {
        let support = v
            .support()
            .expect("cluster routing requires the valuation to declare a spatial support");
        let k = self.shard_of(&support);
        self.shards[k].submit_valuation(v)
    }

    // ── Introspection ─────────────────────────────────────────────────

    /// The tile grid shards are keyed by.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// The halo width sensors are replicated by.
    pub fn halo(&self) -> f64 {
        self.halo
    }

    /// The per-tile engines, in shard (row-major tile) order.
    ///
    /// **Pre-settlement views.** Each shard keeps its own cumulative
    /// ledger and totals, absorbed during its `step` — *before* the
    /// cluster's settlement strips duplicate halo purchases. On
    /// cross-tile workloads the sum of shard books therefore exceeds
    /// the cluster's settled [`ShardedAggregator::ledger`]/
    /// [`ShardedAggregator::totals`] by one announced cost per settled
    /// duplicate. Reconcile against the cluster's books (or the merged
    /// [`SlotReport`]s), never by summing shard state.
    pub fn shards(&self) -> &[Aggregator<'s>] {
        &self.shards
    }

    /// Cumulative merged money flows across all slots — settled: every
    /// measurement counted once, unlike the per-shard books behind
    /// [`ShardedAggregator::shards`].
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Cumulative merged statistics across all slots.
    pub fn totals(&self) -> &Totals {
        &self.totals
    }

    /// What settlement did in the most recent slot.
    pub fn last_settlement(&self) -> Settlement {
        self.last_settlement
    }

    /// What settlement did across all slots.
    pub fn total_settlement(&self) -> Settlement {
        self.total_settlement
    }

    /// Number of live location monitors across all shards (O(shards),
    /// no collation — the workload top-up loops call this per spawn).
    pub fn location_monitor_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.location_monitors().len())
            .sum()
    }

    /// Number of live region monitors across all shards.
    pub fn region_monitor_count(&self) -> usize {
        self.shards.iter().map(|s| s.region_monitors().len()).sum()
    }

    /// Live location monitors, collated in shard order.
    pub fn location_monitors(&self) -> Vec<&LocationMonitor> {
        self.shards
            .iter()
            .flat_map(|s| s.location_monitors())
            .collect()
    }

    /// Live region monitors, collated in shard order.
    pub fn region_monitors(&self) -> Vec<&RegionMonitor> {
        self.shards
            .iter()
            .flat_map(|s| s.region_monitors())
            .collect()
    }

    /// Retired monitors, collated in shard order.
    pub fn retired_monitors(&self) -> Vec<&RetiredMonitor> {
        self.shards
            .iter()
            .flat_map(|s| s.retired_monitors())
            .collect()
    }

    /// Drops retained retired-monitor state in every shard.
    pub fn clear_retired(&mut self) {
        for s in &mut self.shards {
            s.clear_retired();
        }
    }

    // ── The tick ──────────────────────────────────────────────────────

    /// Runs one time slot: announces each sensor to its home tile plus
    /// every tile whose halo ring contains it, steps all shards in
    /// parallel, and settles the per-shard reports into one merged
    /// [`SlotReport`] (global snapshot indices, shard-order result
    /// concatenation, deduplicated sensors, budget-balanced merged
    /// ledger).
    pub fn step(&mut self, slot: Slot, sensors: &[SensorSnapshot]) -> SlotReport {
        let n = self.shards.len();
        // Route the announcement: per-shard snapshot slices plus the
        // local-index → global-index maps settlement needs later.
        let mut local: Vec<Vec<SensorSnapshot>> = vec![Vec::new(); n];
        let mut to_global: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (gi, s) in sensors.iter().enumerate() {
            for k in self.grid.tiles_seeing(s.loc, self.halo) {
                local[k].push(*s);
                to_global[k].push(gi);
            }
        }

        let reports = self.step_shards(slot, &local);
        for (k, shard) in self.shards.iter().enumerate() {
            assert!(
                shard.next_query_id() < (k as u64 + 1) * SHARD_ID_BLOCK,
                "shard {k} overran its query-id block"
            );
        }

        let mut report = self.settle(slot, sensors, reports, &to_global);
        self.ledger.absorb(&report.ledger);
        self.totals.absorb_report(&report);
        self.totals.monitors_retired = self
            .shards
            .iter()
            .map(|s| s.totals().monitors_retired)
            .sum();
        report.totals = self.totals.clone();
        report
    }

    /// Runs one time slot against a stream of intra-slot
    /// [`ArrivalEvent`]s: every query event is routed by the same
    /// support-anchor rule as the `submit_*` methods, every sensor event
    /// goes to its home tile plus the halo ring (stamped with its global
    /// arrival ordinal for settlement), and each shard consumes its
    /// sub-stream through [`Aggregator::step_streaming`]. Settlement is
    /// the ordinary budget-balanced pass; the merged report carries the
    /// shard-order concatenation of the per-shard latency statistics. A
    /// stream whose events all carry tick 0 in submission order is
    /// bit-identical to routing the submissions up front and calling
    /// [`ShardedAggregator::step`].
    pub fn step_streaming(&mut self, slot: Slot, events: &[ArrivalEvent]) -> SlotReport {
        let n = self.shards.len();
        let mut local: Vec<Vec<ArrivalEvent>> = vec![Vec::new(); n];
        let mut to_global: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut sensors: Vec<SensorSnapshot> = Vec::new();
        for ev in events {
            match &ev.payload {
                ArrivalPayload::Sensor(s) => {
                    let gi = sensors.len();
                    sensors.push(*s);
                    for k in self.grid.tiles_seeing(s.loc, self.halo) {
                        local[k].push(ev.clone());
                        to_global[k].push(gi);
                    }
                }
                ArrivalPayload::Point(spec) => {
                    local[self.shard_of_point(spec.loc)].push(ev.clone());
                }
                ArrivalPayload::Aggregate(spec) => {
                    let k = self.shard_of(&SpatialSupport::Rect(spec.region));
                    local[k].push(ev.clone());
                }
                ArrivalPayload::LocationMonitor(spec) => {
                    local[self.shard_of_point(spec.loc)].push(ev.clone());
                }
                ArrivalPayload::RegionMonitor(spec) => {
                    let k = self.shard_of(&SpatialSupport::Rect(*spec.valuation.region()));
                    local[k].push(ev.clone());
                }
            }
        }

        let mut reports =
            self.step_shards_with(&local, |shard, events| shard.step_streaming(slot, events));
        for (k, shard) in self.shards.iter().enumerate() {
            assert!(
                shard.next_query_id() < (k as u64 + 1) * SHARD_ID_BLOCK,
                "shard {k} overran its query-id block"
            );
        }

        // Pull the per-shard latency statistics out before settlement
        // merges the reports (settlement is latency-agnostic).
        let mut stats = StreamStats::new(0);
        for rep in &mut reports {
            if let Some(s) = rep.streaming.take() {
                stats.absorb(&s);
            }
        }

        let mut report = self.settle(slot, &sensors, reports, &to_global);
        report.streaming = Some(stats);
        self.ledger.absorb(&report.ledger);
        self.totals.absorb_report(&report);
        self.totals.monitors_retired = self
            .shards
            .iter()
            .map(|s| s.totals().monitors_retired)
            .sum();
        report.totals = self.totals.clone();
        report
    }

    /// Steps every shard against its routed announcement, in parallel on
    /// a scoped fork-join pool. Reports come back in ascending shard
    /// order regardless of the worker count, which is the whole
    /// determinism argument: the merge below never observes scheduling.
    fn step_shards(&mut self, slot: Slot, local: &[Vec<SensorSnapshot>]) -> Vec<SlotReport> {
        self.step_shards_with(local, |shard, sensors| shard.step(slot, sensors))
    }

    /// The shared fork-join skeleton behind [`ShardedAggregator::step`]
    /// and [`ShardedAggregator::step_streaming`]: applies `f` to every
    /// (shard, routed input) pair — serially below two worker ranges,
    /// otherwise on scoped threads over contiguous shard chunks — and
    /// returns the reports in ascending shard order either way.
    fn step_shards_with<I: Sync>(
        &mut self,
        local: &[Vec<I>],
        f: impl Fn(&mut Aggregator<'s>, &[I]) -> SlotReport + Sync,
    ) -> Vec<SlotReport> {
        let n = self.shards.len();
        let ranges = Threads::new(self.threads.get().min(n)).shard_ranges(n);
        if ranges.len() <= 1 {
            return self
                .shards
                .iter_mut()
                .zip(local)
                .map(|(shard, inputs)| f(shard, inputs))
                .collect();
        }
        std::thread::scope(|scope| {
            let f = &f;
            let mut handles = Vec::with_capacity(ranges.len());
            let mut shard_rest: &mut [Aggregator<'s>] = &mut self.shards;
            let mut local_rest: &[Vec<I>] = local;
            for range in &ranges {
                let (chunk, rest) = shard_rest.split_at_mut(range.len());
                shard_rest = rest;
                let (inputs, lrest) = local_rest.split_at(range.len());
                local_rest = lrest;
                handles.push(scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .zip(inputs)
                        .map(|(shard, inputs)| f(shard, inputs))
                        .collect::<Vec<SlotReport>>()
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
    }

    /// The global settlement pass: remaps every per-shard result to
    /// global snapshot indices, merges reports in shard order, and
    /// resolves halo sensors selected by multiple shards — the lowest
    /// shard id keeps the purchase, each losing shard's ledger refunds
    /// its payers ([`Ledger::strip_sensor`]) and the duplicate's cost
    /// returns to welfare, so the merged ledger pays every measurement
    /// exactly once.
    fn settle(
        &mut self,
        slot: Slot,
        sensors: &[SensorSnapshot],
        reports: Vec<SlotReport>,
        to_global: &[Vec<usize>],
    ) -> SlotReport {
        let mut settlement = Settlement::default();
        let mut claimed: HashSet<usize> = HashSet::new();
        let mut welfare = 0.0;
        let mut breakdown = MixBreakdown::default();
        let mut ledger = Ledger::new();
        let mut sensors_used = Vec::new();
        let mut point_results = Vec::new();
        let mut aggregate_results = Vec::new();
        let mut custom_results = Vec::new();

        for (k, mut rep) in reports.into_iter().enumerate() {
            let map = &to_global[k];
            for r in &mut rep.point_results {
                r.sensor = r.sensor.map(|si| map[si]);
            }
            for r in &mut rep.aggregate_results {
                for si in &mut r.sensors {
                    *si = map[*si];
                }
            }
            for r in &mut rep.custom_results {
                for si in &mut r.sensors {
                    *si = map[*si];
                }
            }
            for si in &mut rep.sensors_used {
                *si = map[*si];
            }

            let mut refunds: Vec<(QueryId, f64)> = Vec::new();
            for &gi in &rep.sensors_used {
                if claimed.insert(gi) {
                    sensors_used.push(gi);
                } else {
                    // A lower shard already owns this measurement: undo
                    // this shard's purchase.
                    settlement.duplicates += 1;
                    settlement.cost_restored += sensors[gi].cost;
                    refunds.extend(rep.ledger.sensor_payers(sensors[gi].id));
                    settlement.refunded += rep.ledger.strip_sensor(sensors[gi].id);
                }
            }
            // Keep the per-query `paid` fields consistent with the
            // settled ledger: a refunded query's result must not still
            // claim the pre-settlement payment. (Monitor-owned query ids
            // have no entry in the result lists; their refunds live only
            // in the ledger.)
            apply_refunds_to_results(&mut rep, refunds);

            welfare += rep.welfare;
            breakdown.absorb(&rep.breakdown);
            ledger.absorb(&rep.ledger);
            point_results.extend(rep.point_results);
            aggregate_results.extend(rep.aggregate_results);
            custom_results.extend(rep.custom_results);
        }
        welfare += settlement.cost_restored;

        self.last_settlement = settlement;
        self.total_settlement.absorb(&settlement);

        SlotReport {
            slot,
            welfare,
            breakdown,
            ledger,
            sensors_used,
            point_results,
            aggregate_results,
            custom_results,
            totals: Totals::default(),
            streaming: None,
        }
    }
}

/// Subtracts settlement refunds from the `paid` fields of the results
/// they belong to. One id → result-slot map is built per report that
/// actually has refunds, so settlement stays O(results + refunds) even
/// on seam-heavy metro slots. Ids not present in any result list
/// (monitor-generated queries, sharing contributors) are ledger-only
/// and need no rewrite.
fn apply_refunds_to_results(rep: &mut SlotReport, refunds: Vec<(QueryId, f64)>) {
    if refunds.is_empty() {
        return;
    }
    let mut slots: HashMap<QueryId, (u8, usize)> = HashMap::new();
    for (i, r) in rep.point_results.iter().enumerate() {
        slots.insert(r.id, (0, i));
    }
    for (i, r) in rep.aggregate_results.iter().enumerate() {
        slots.insert(r.id, (1, i));
    }
    for (i, r) in rep.custom_results.iter().enumerate() {
        slots.insert(r.id, (2, i));
    }
    for (qid, amount) in refunds {
        match slots.get(&qid) {
            Some(&(0, i)) => rep.point_results[i].paid -= amount,
            Some(&(1, i)) => rep.aggregate_results[i].paid -= amount,
            Some(&(2, i)) => rep.custom_results[i].paid -= amount,
            _ => {}
        }
    }
}

// The cluster's whole reason to exist is stepping engines on worker
// threads; if `Aggregator` ever stops being `Send`, fail loudly at
// compile time rather than in a trait bound three layers up.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Aggregator<'static>>();
    assert_send::<ShardedAggregator<'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use ps_geo::Rect;

    fn quality() -> QualityModel {
        QualityModel::new(5.0)
    }

    fn arena() -> Rect {
        Rect::with_size(100.0, 100.0)
    }

    fn sensor(id: usize, x: f64, y: f64) -> SensorSnapshot {
        SensorSnapshot {
            id,
            loc: Point::new(x, y),
            cost: 10.0,
            trust: 1.0,
            inaccuracy: 0.0,
        }
    }

    fn point_spec(x: f64, y: f64, budget: f64) -> PointSpec {
        PointSpec {
            loc: Point::new(x, y),
            budget,
            theta_min: 0.2,
        }
    }

    #[test]
    fn queries_route_to_the_anchor_tile_with_disjoint_id_blocks() {
        let mut cluster = ClusterBuilder::new(quality(), arena(), 2).build();
        let a = cluster.submit_point(point_spec(10.0, 10.0, 15.0)); // tile 0
        let b = cluster.submit_point(point_spec(90.0, 10.0, 15.0)); // tile 1
        let c = cluster.submit_point(point_spec(10.0, 90.0, 15.0)); // tile 2
        let d = cluster.submit_point(point_spec(90.0, 90.0, 15.0)); // tile 3
        assert_eq!(a, QueryId(1));
        assert_eq!(b, QueryId(SHARD_ID_BLOCK + 1));
        assert_eq!(c, QueryId(2 * SHARD_ID_BLOCK + 1));
        assert_eq!(d, QueryId(3 * SHARD_ID_BLOCK + 1));
        let e = cluster.submit_aggregate(AggregateSpec {
            region: Rect::new(60.0, 60.0, 80.0, 80.0),
            budget: 40.0,
            kind: ps_core::query::AggregateKind::Average,
        });
        assert_eq!(e, QueryId(3 * SHARD_ID_BLOCK + 2), "centroid routes to 3");
    }

    #[test]
    fn one_by_one_cluster_is_the_plain_engine() {
        let sensors = vec![sensor(0, 5.0, 5.0), sensor(1, 60.0, 60.0)];
        let specs = [
            point_spec(5.0, 5.0, 12.0),
            point_spec(60.0, 60.0, 12.0),
            point_spec(7.0, 5.0, 9.0),
        ];
        let mut plain = AggregatorBuilder::new(quality()).threads(1).build();
        let mut cluster = ClusterBuilder::new(quality(), arena(), 1).build();
        for spec in specs {
            let a = plain.submit_point(spec);
            let b = cluster.submit_point(spec);
            assert_eq!(a, b, "1x1 cluster must mint the engine's ids");
        }
        for t in 0..2 {
            let a = plain.step(t, &sensors);
            let b = cluster.step(t, &sensors);
            assert_eq!(a.welfare, b.welfare);
            assert_eq!(a.sensors_used, b.sensors_used);
            assert_eq!(a.ledger.total_payments(), b.ledger.total_payments());
            assert_eq!(a.point_results.len(), b.point_results.len());
        }
        assert_eq!(cluster.total_settlement(), Settlement::default());
    }

    #[test]
    fn halo_duplicates_settle_to_one_payment() {
        // One sensor on the 2×2 seam, one generous query in tile 0 and
        // one in tile 3: each shard buys the sensor on its own, and
        // settlement must collapse the two purchases into one.
        let sensors = vec![sensor(7, 50.0, 50.0)];
        let build_cluster = |threads: usize| {
            ClusterBuilder::new(quality(), arena(), 2)
                .threads(threads)
                .build()
        };
        let mut cluster = build_cluster(1);
        cluster.submit_point(point_spec(48.0, 48.0, 30.0));
        cluster.submit_point(point_spec(52.0, 52.0, 30.0));
        let report = cluster.step(0, &sensors);

        assert_eq!(cluster.last_settlement().duplicates, 1);
        assert_eq!(cluster.last_settlement().cost_restored, 10.0);
        assert_eq!(report.sensors_used, vec![0], "one merged usage entry");
        assert_eq!(report.breakdown.point_satisfied, 2);
        report
            .ledger
            .verify_cost_recovery(|_| 10.0, 1e-9)
            .expect("the measurement is paid exactly once");
        assert!((report.ledger.total_receipts() - report.ledger.total_payments()).abs() < 1e-9);
        // Per-query `paid` fields are settled too, not just the ledger:
        // each result agrees with the merged ledger, and their sum is
        // the sensor's one cost.
        let paid_sum: f64 = report.point_results.iter().map(|r| r.paid).sum();
        assert!(
            (paid_sum - 10.0).abs() < 1e-9,
            "results double-count: {paid_sum}"
        );
        for r in &report.point_results {
            assert!(
                (r.paid - report.ledger.query_payment(r.id)).abs() < 1e-9,
                "result paid {} disagrees with ledger {}",
                r.paid,
                report.ledger.query_payment(r.id)
            );
        }

        // And the settled welfare equals the plain engine's on the same
        // slot (both queries value the sensor, its cost counted once).
        let mut plain = AggregatorBuilder::new(quality()).threads(1).build();
        plain.submit_point(point_spec(48.0, 48.0, 30.0));
        plain.submit_point(point_spec(52.0, 52.0, 30.0));
        let plain_report = plain.step(0, &sensors);
        assert!((report.welfare - plain_report.welfare).abs() < 1e-9);

        // Determinism: the same slot at a different fork-join width is
        // bit-identical.
        let mut wide = build_cluster(7);
        wide.submit_point(point_spec(48.0, 48.0, 30.0));
        wide.submit_point(point_spec(52.0, 52.0, 30.0));
        let wide_report = wide.step(0, &sensors);
        assert_eq!(report.welfare, wide_report.welfare);
        assert_eq!(
            report.ledger.total_payments(),
            wide_report.ledger.total_payments()
        );
    }

    #[test]
    fn boundary_query_sees_halo_sensors() {
        // Query in tile 0 near the seam; its only viable sensor sits in
        // tile 1. Without the halo the query would go unanswered.
        let sensors = vec![sensor(0, 52.0, 25.0)];
        let mut cluster = ClusterBuilder::new(quality(), arena(), 2).build();
        cluster.submit_point(point_spec(49.0, 25.0, 30.0));
        let report = cluster.step(0, &sensors);
        assert_eq!(report.breakdown.point_satisfied, 1);
        assert_eq!(report.point_results[0].sensor, Some(0));
    }

    #[test]
    #[should_panic(expected = "spatial support")]
    fn supportless_valuations_are_rejected() {
        use ps_core::valuation::FnValuation;
        let mut cluster = ClusterBuilder::new(quality(), arena(), 2).build();
        cluster.submit_valuation(FnValuation::new(|_: &[SensorSnapshot]| 0.0, 1.0));
    }
}
