//! Sharded federation over the slot engine: a tiled multi-aggregator
//! cluster with halo routing and global settlement.
//!
//! The paper's aggregator is a single logical service, but its welfare
//! objective (Eq. 2) decomposes spatially: a query only ever touches
//! sensors inside its spatial support (the `d_max` disk of a point
//! query, the sensing-range-expanded rectangle of an aggregate), so a
//! city-scale arena can be partitioned into tiles that run near-
//! independent slot engines. This crate is that partition made concrete:
//!
//! * [`ClusterBuilder`] splits the arena into a `g × g`
//!   [`TileGrid`](ps_geo::TileGrid) and builds one
//!   [`ps_core::Aggregator`] per tile, each minting query ids from its
//!   own disjoint block.
//! * [`ShardedAggregator`] routes every submitted query to the shard
//!   owning its [`SpatialSupport`](ps_core::valuation::SpatialSupport)
//!   anchor, announces each slot's sensors to their home tile **plus a
//!   halo ring** so boundary queries still see their full candidate set,
//!   steps all shards in parallel on a fork-join pool, and runs a global
//!   **settlement** pass: per-shard reports and ledgers merge in shard
//!   order, and a halo sensor bought by several shards is resolved
//!   deterministically — the lowest shard id keeps it, every losing
//!   shard's ledger refunds its payers via
//!   [`Ledger::strip_sensor`](ps_core::payment::Ledger::strip_sensor) —
//!   so the merged ledger stays budget-balanced and cost-recovering.
//! * [`SlotEngine`] is the object-safe common surface of the plain
//!   engine and the cluster, letting drivers swap one for the other.
//!
//! # Exactness contract
//!
//! For a fixed grid, a cluster is **bit-identical across thread
//! counts**: shards are stepped independently and merged in ascending
//! shard order, so the fork-join width can never change a result. A
//! `1 × 1` cluster *is* the plain engine (same ids, same reports, plus
//! an empty settlement).
//!
//! Against a single engine at `g > 1` the contract is conditional. When
//! every query's support fits inside its home tile (and therefore
//! trivially inside tile+halo), per-query values, payments, and serving
//! sensors are bit-identical to the plain engine's — the greedy
//! selection decomposes exactly — and slot welfare agrees up to
//! floating-point summation order. When supports cross tiles, shards
//! optimize locally and the cluster may select differently than the
//! global greedy; the slot-engine bench measures that **welfare gap**
//! per scale (see `docs/PERFORMANCE.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod engine;

pub use cluster::{ClusterBuilder, Settlement, ShardedAggregator, SHARD_ID_BLOCK};
pub use engine::SlotEngine;
