//! Incremental posterior-variance tracking: the fast engine behind the
//! expected-variance-reduction valuation `F(A)` of Eq. 6.
//!
//! Conditioning a Gaussian vector on one noisy observation at index `i`
//! updates its covariance by a rank-1 downdate:
//!
//! ```text
//! Σ' = Σ − Σ[:,i] Σ[i,:] / (Σ[i,i] + σ_n²)
//! ```
//!
//! Applying observations sequentially is exactly equivalent to batch
//! conditioning (tested against [`crate::gp::GaussianProcess`]), but gives
//! O(cells) *marginal* variance-reduction queries — which is what
//! Algorithm 4 evaluates in its inner loop for every `(sensor, time)`
//! pair.

use crate::kernel::Kernel;
use ps_geo::Point;
use ps_linalg::Matrix;

/// Normalization constant for the paper-facing `F` value: removing this
/// fraction of the region's total prior variance yields `F = 1`.
///
/// Eq. 6's `F` is an unnormalized integral, and Fig. 9(b) of the paper
/// shows result qualities above 1 "most of the times", so `F` must exceed
/// 1 for well-instrumented regions. Normalizing by half the prior
/// variance (a region 50 %-explained scores F = 1) reproduces that
/// behaviour at the paper's budget range; see DESIGN.md §3.
pub const F_NORMALIZATION: f64 = 0.5;

/// Posterior covariance over a fixed set of locations (grid cells),
/// updated incrementally as sensors are observed.
#[derive(Debug, Clone)]
pub struct PosteriorField {
    locations: Vec<Point>,
    cov: Matrix,
    prior_var: Vec<f64>,
    noise_variance: f64,
}

impl PosteriorField {
    /// Builds the prior field over `locations` with kernel `k` and
    /// observation-noise variance `noise_variance`.
    pub fn new<K: Kernel>(kernel: &K, locations: Vec<Point>, noise_variance: f64) -> Self {
        assert!(noise_variance >= 0.0, "noise variance must be non-negative");
        let n = locations.len();
        let cov = Matrix::from_fn(n, n, |i, j| kernel.eval(locations[i], locations[j]));
        let prior_var = (0..n).map(|i| cov[(i, i)]).collect();
        Self {
            locations,
            cov,
            prior_var,
            noise_variance,
        }
    }

    /// Number of tracked locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// True when no locations are tracked.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// The tracked locations.
    pub fn locations(&self) -> &[Point] {
        &self.locations
    }

    /// Current posterior variance at location index `i`.
    pub fn variance(&self, i: usize) -> f64 {
        self.cov[(i, i)].max(0.0)
    }

    /// Prior variance at location index `i`.
    pub fn prior_variance(&self, i: usize) -> f64 {
        self.prior_var[i]
    }

    /// Total posterior variance over a subset of location indices.
    pub fn total_variance(&self, subset: &[usize]) -> f64 {
        subset.iter().map(|&i| self.variance(i)).sum()
    }

    /// Total variance reduction achieved so far over `subset`:
    /// `Σ_v prior(v) − post(v)`.
    pub fn total_reduction(&self, subset: &[usize]) -> f64 {
        subset
            .iter()
            .map(|&i| (self.prior_var[i] - self.variance(i)).max(0.0))
            .sum()
    }

    /// Additional variance reduction over `subset` if a (noisy) sensor at
    /// location index `obs` were observed — without mutating the field.
    ///
    /// `Σ_{v∈subset} Σ[v,obs]² / (Σ[obs,obs] + σ_n²)`.
    pub fn reduction_if_observed(&self, obs: usize, subset: &[usize]) -> f64 {
        let denom = self.cov[(obs, obs)] + self.noise_variance;
        if denom <= 1e-12 {
            return 0.0;
        }
        subset
            .iter()
            .map(|&v| {
                let c = self.cov[(v, obs)];
                c * c
            })
            .sum::<f64>()
            / denom
    }

    /// Conditions the field on a noisy observation at location index
    /// `obs` (rank-1 covariance downdate).
    pub fn observe(&mut self, obs: usize) {
        let n = self.len();
        let denom = self.cov[(obs, obs)] + self.noise_variance;
        if denom <= 1e-12 {
            return; // already fully determined
        }
        let col: Vec<f64> = (0..n).map(|i| self.cov[(i, obs)]).collect();
        for i in 0..n {
            let ci = col[i] / denom;
            if ci == 0.0 {
                continue;
            }
            let row = self.cov.row_mut(i);
            for (j, &cj) in col.iter().enumerate() {
                row[j] -= ci * cj;
            }
        }
        // Numerical hygiene: variances must not go (more than dust) negative.
        for i in 0..n {
            if self.cov[(i, i)] < 0.0 {
                self.cov[(i, i)] = 0.0;
            }
        }
    }

    /// Paper-facing `F` over `subset`: fraction of the subset's total
    /// prior variance removed so far, scaled by [`F_NORMALIZATION`] so a
    /// 70 %-explained region scores 1.0. Empty subsets score 0.
    pub fn f_value(&self, subset: &[usize]) -> f64 {
        let prior: f64 = subset.iter().map(|&i| self.prior_var[i]).sum();
        if prior <= 1e-12 {
            return 0.0;
        }
        self.total_reduction(subset) / (F_NORMALIZATION * prior)
    }

    /// `F` after hypothetically also observing `obs`, without mutating.
    pub fn f_value_if_observed(&self, obs: usize, subset: &[usize]) -> f64 {
        let prior: f64 = subset.iter().map(|&i| self.prior_var[i]).sum();
        if prior <= 1e-12 {
            return 0.0;
        }
        (self.total_reduction(subset) + self.reduction_if_observed(obs, subset))
            / (F_NORMALIZATION * prior)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gp::GaussianProcess;
    use crate::kernel::SquaredExponential;
    use proptest::prelude::*;

    fn grid_locations(w: usize, h: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for y in 0..h {
            for x in 0..w {
                pts.push(Point::new(x as f64 + 0.5, y as f64 + 0.5));
            }
        }
        pts
    }

    fn kernel() -> SquaredExponential {
        SquaredExponential::new(2.0, 1.8)
    }

    #[test]
    fn prior_field_has_kernel_variance() {
        let locs = grid_locations(4, 3);
        let f = PosteriorField::new(&kernel(), locs.clone(), 0.1);
        for i in 0..locs.len() {
            assert!((f.variance(i) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sequential_conditioning_matches_batch_gp() {
        let locs = grid_locations(5, 4);
        let noise = 0.25;
        let mut field = PosteriorField::new(&kernel(), locs.clone(), noise);
        let observed = [3usize, 11, 17];
        for &o in &observed {
            field.observe(o);
        }
        // Batch reference: GP conditioned on the same sensor locations.
        let obs_locs: Vec<Point> = observed.iter().map(|&o| locs[o]).collect();
        let gp = GaussianProcess::fit(kernel(), obs_locs, vec![0.0; observed.len()], noise);
        for (i, &loc) in locs.iter().enumerate() {
            let batch = gp.variance(loc);
            let inc = field.variance(i);
            assert!(
                (batch - inc).abs() < 1e-8,
                "cell {i}: batch {batch} vs incremental {inc}"
            );
        }
    }

    #[test]
    fn reduction_if_observed_matches_actual_observation() {
        let locs = grid_locations(6, 5);
        let subset: Vec<usize> = (0..locs.len()).collect();
        let mut field = PosteriorField::new(&kernel(), locs, 0.3);
        field.observe(7);
        let predicted = field.reduction_if_observed(20, &subset);
        let before = field.total_variance(&subset);
        field.observe(20);
        let after = field.total_variance(&subset);
        assert!((before - after - predicted).abs() < 1e-8);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i indexes field and reference
    fn observing_never_increases_variance() {
        let locs = grid_locations(5, 5);
        let mut field = PosteriorField::new(&kernel(), locs.clone(), 0.2);
        let mut last: Vec<f64> = (0..locs.len()).map(|i| field.variance(i)).collect();
        for obs in [0usize, 12, 24, 6, 18] {
            field.observe(obs);
            for i in 0..locs.len() {
                let v = field.variance(i);
                assert!(v <= last[i] + 1e-9, "variance rose at {i}");
                last[i] = v;
            }
        }
    }

    #[test]
    fn f_value_zero_when_unobserved_and_grows() {
        let locs = grid_locations(4, 4);
        let subset: Vec<usize> = (0..8).collect();
        let mut field = PosteriorField::new(&kernel(), locs, 0.1);
        assert_eq!(field.f_value(&subset), 0.0);
        field.observe(2);
        let f1 = field.f_value(&subset);
        assert!(f1 > 0.0);
        field.observe(5);
        let f2 = field.f_value(&subset);
        assert!(f2 >= f1);
        // With normalization, near-complete coverage can exceed 1.
        for o in 0..16 {
            field.observe(o);
        }
        assert!(field.f_value(&subset) > 1.0);
    }

    #[test]
    fn f_value_if_observed_is_consistent() {
        let locs = grid_locations(4, 4);
        let subset: Vec<usize> = (4..12).collect();
        let mut field = PosteriorField::new(&kernel(), locs, 0.2);
        field.observe(0);
        let hyp = field.f_value_if_observed(9, &subset);
        field.observe(9);
        assert!((field.f_value(&subset) - hyp).abs() < 1e-9);
    }

    #[test]
    fn empty_subset_has_zero_f() {
        let locs = grid_locations(3, 3);
        let field = PosteriorField::new(&kernel(), locs, 0.1);
        assert_eq!(field.f_value(&[]), 0.0);
    }

    #[test]
    fn repeated_observation_of_same_cell_saturates() {
        let locs = grid_locations(3, 3);
        let subset: Vec<usize> = (0..9).collect();
        let mut field = PosteriorField::new(&kernel(), locs, 0.5);
        field.observe(4);
        let f1 = field.f_value(&subset);
        field.observe(4); // same cell again: only noise averaging remains
        let f2 = field.f_value(&subset);
        assert!(f2 >= f1);
        assert!(f2 - f1 < f1, "second observation must add less than first");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn incremental_matches_batch_on_random_observation_sets(
            picks in proptest::collection::vec(0usize..20, 1..5),
        ) {
            let locs = grid_locations(5, 4);
            let noise = 0.4;
            let mut field = PosteriorField::new(&kernel(), locs.clone(), noise);
            let mut unique: Vec<usize> = Vec::new();
            for p in picks {
                if !unique.contains(&p) {
                    unique.push(p);
                    field.observe(p);
                }
            }
            let obs_locs: Vec<Point> = unique.iter().map(|&o| locs[o]).collect();
            let gp = GaussianProcess::fit(kernel(), obs_locs, vec![0.0; unique.len()], noise);
            for (i, &loc) in locs.iter().enumerate() {
                prop_assert!((gp.variance(loc) - field.variance(i)).abs() < 1e-7);
            }
        }
    }
}
