//! Hyperparameter fitting by marginal-likelihood grid search.
//!
//! §4.6 of the paper: "The parameters of the Gaussian model are learned
//! from a fraction of sensor readings in \[the] Intel Lab dataset." With
//! only a few dozen training readings, a coarse grid search over
//! (variance, length-scale) maximizing the exact log marginal likelihood
//! is both robust and fast — no gradients required.

use crate::gp::GaussianProcess;
use crate::kernel::SquaredExponential;
use ps_geo::Point;

/// Search space for the RBF hyperparameter grid search.
#[derive(Debug, Clone)]
pub struct HyperGrid {
    /// Candidate signal variances.
    pub variances: Vec<f64>,
    /// Candidate length scales (grid units).
    pub length_scales: Vec<f64>,
    /// Candidate observation-noise variances.
    pub noise_variances: Vec<f64>,
}

impl Default for HyperGrid {
    fn default() -> Self {
        Self {
            variances: vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
            length_scales: vec![0.5, 1.0, 2.0, 3.0, 5.0, 8.0],
            noise_variances: vec![0.01, 0.05, 0.1, 0.5],
        }
    }
}

/// The fitted hyperparameters and their score.
#[derive(Debug, Clone, Copy)]
pub struct FittedHyperparams {
    /// Best RBF kernel found.
    pub kernel: SquaredExponential,
    /// Best observation-noise variance found.
    pub noise_variance: f64,
    /// Log marginal likelihood achieved.
    pub log_marginal_likelihood: f64,
}

/// Fits RBF hyperparameters to (de-meaned) readings at `locations` by
/// exhaustive grid search over `grid`.
///
/// # Panics
/// Panics when inputs are empty or mismatched.
pub fn fit_rbf(locations: &[Point], readings: &[f64], grid: &HyperGrid) -> FittedHyperparams {
    assert_eq!(locations.len(), readings.len(), "length mismatch");
    assert!(!locations.is_empty(), "need at least one reading");
    assert!(
        !grid.variances.is_empty()
            && !grid.length_scales.is_empty()
            && !grid.noise_variances.is_empty(),
        "empty hyperparameter grid"
    );
    // De-mean: the GP prior is zero-mean.
    let mean = readings.iter().sum::<f64>() / readings.len() as f64;
    let centred: Vec<f64> = readings.iter().map(|r| r - mean).collect();

    let mut best: Option<FittedHyperparams> = None;
    for &v in &grid.variances {
        for &l in &grid.length_scales {
            for &n in &grid.noise_variances {
                let kernel = SquaredExponential::new(v, l);
                let gp = GaussianProcess::fit(kernel, locations.to_vec(), centred.clone(), n);
                let lml = gp.log_marginal_likelihood();
                if best
                    .as_ref()
                    .is_none_or(|b| lml > b.log_marginal_likelihood)
                {
                    best = Some(FittedHyperparams {
                        kernel,
                        noise_variance: n,
                        log_marginal_likelihood: lml,
                    });
                }
            }
        }
    }
    best.expect("non-empty grid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::FieldSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_length_scale_regime_from_smooth_field() {
        // Generate from a long length scale; the fit should not choose the
        // shortest candidate.
        let locs: Vec<Point> = (0..49)
            .map(|i| Point::new((i % 7) as f64, (i / 7) as f64))
            .collect();
        let true_kernel = SquaredExponential::new(4.0, 3.0);
        let sampler = FieldSampler::new(&true_kernel, &locs, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let field = sampler.sample(&mut rng);

        let fitted = fit_rbf(&locs, &field, &HyperGrid::default());
        assert!(
            fitted.kernel.length_scale >= 1.0,
            "fitted length scale {} too short for a smooth field",
            fitted.kernel.length_scale
        );
    }

    #[test]
    fn noisy_iid_data_prefers_large_noise_or_short_scale() {
        // White noise has no spatial structure: the fit must not claim a
        // long-length-scale high-signal model *with* tiny noise.
        let locs: Vec<Point> = (0..36)
            .map(|i| Point::new((i % 6) as f64, (i / 6) as f64))
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        let noise: Vec<f64> = (0..36)
            .map(|_| crate::sample::standard_normal(&mut rng))
            .collect();
        let fitted = fit_rbf(&locs, &noise, &HyperGrid::default());
        let structured = fitted.kernel.length_scale >= 5.0 && fitted.noise_variance <= 0.01;
        assert!(!structured, "white noise fitted as smooth structure");
    }

    #[test]
    #[should_panic(expected = "at least one reading")]
    fn empty_input_rejected() {
        let _ = fit_rbf(&[], &[], &HyperGrid::default());
    }

    #[test]
    fn best_score_is_finite() {
        let locs = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let fitted = fit_rbf(&locs, &[1.0, 2.0, 3.0], &HyperGrid::default());
        assert!(fitted.log_marginal_likelihood.is_finite());
    }
}
