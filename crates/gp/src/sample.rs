//! Sampling from GP priors: synthesizing spatially correlated fields.
//!
//! The Intel-Lab substitute dataset (see DESIGN.md §4) needs ground-truth
//! phenomenon values with realistic spatial correlation. Drawing a sample
//! from a GP prior — `f = L z` with `K = L Lᵀ` and `z ~ N(0, I)` —
//! produces exactly the statistical structure the region-monitoring
//! valuation assumes.

use crate::kernel::Kernel;
use ps_geo::Point;
use ps_linalg::{Cholesky, Matrix};
use rand::Rng;

/// A reusable sampler for GP prior draws over a fixed location set.
///
/// Construction factors the kernel matrix once (O(n³)); each draw is then
/// an O(n²) triangular multiply. Useful for the AR(1)-evolved fields of
/// the Intel-Lab substitute, which draws one innovation field per slot.
pub struct FieldSampler {
    chol: Cholesky,
    mean: f64,
    n: usize,
}

impl FieldSampler {
    /// Prepares a sampler over `locations` with the given kernel and
    /// constant mean.
    pub fn new<K: Kernel>(kernel: &K, locations: &[Point], mean: f64) -> Self {
        let n = locations.len();
        let k = Matrix::from_fn(n, n, |i, j| kernel.eval(locations[i], locations[j]));
        let (chol, _jitter) =
            Cholesky::factor_with_jitter(&k, 1e-8, 14).expect("kernel matrix must factor");
        Self { chol, mean, n }
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the sampler covers no locations.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Draws one field realization.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        let z: Vec<f64> = (0..self.n).map(|_| standard_normal(rng)).collect();
        // f = mean + L z ; L is lower triangular.
        let l = self.chol.l();
        (0..self.n)
            .map(|i| {
                let row = l.row(i);
                let mut s = self.mean;
                for k in 0..=i {
                    s += row[k] * z[k];
                }
                s
            })
            .collect()
    }
}

/// One standard-normal draw via Box–Muller (the offline `rand` build has
/// no `rand_distr`).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid(n: usize) -> Vec<Point> {
        (0..n * n)
            .map(|i| Point::new((i % n) as f64, (i / n) as f64))
            .collect()
    }

    #[test]
    fn sample_has_requested_mean() {
        let locs = grid(6);
        let sampler = FieldSampler::new(&SquaredExponential::new(1.0, 2.0), &locs, 50.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut grand_mean = 0.0;
        let draws = 200;
        for _ in 0..draws {
            let field = sampler.sample(&mut rng);
            grand_mean += field.iter().sum::<f64>() / field.len() as f64;
        }
        grand_mean /= draws as f64;
        assert!(
            (grand_mean - 50.0).abs() < 1.0,
            "grand mean {grand_mean} far from 50"
        );
    }

    #[test]
    fn nearby_cells_are_correlated() {
        // Long length scale → neighbours nearly identical; far cells less so.
        let locs = grid(8);
        let sampler = FieldSampler::new(&SquaredExponential::new(1.0, 3.0), &locs, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut near_cov = 0.0;
        let mut far_cov = 0.0;
        let draws = 300;
        for _ in 0..draws {
            let f = sampler.sample(&mut rng);
            near_cov += f[0] * f[1]; // distance 1
            far_cov += f[0] * f[63]; // distance ~9.9
        }
        near_cov /= draws as f64;
        far_cov /= draws as f64;
        assert!(
            near_cov > far_cov + 0.2,
            "near {near_cov} not more correlated than far {far_cov}"
        );
        assert!(near_cov > 0.5);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "variance {var}");
    }

    #[test]
    fn empty_location_set_is_fine() {
        let sampler = FieldSampler::new(&SquaredExponential::new(1.0, 1.0), &[], 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sampler.sample(&mut rng).is_empty());
        assert!(sampler.is_empty());
    }
}
