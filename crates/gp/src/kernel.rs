//! Covariance kernels over grid points.

use ps_geo::Point;

/// A stationary covariance kernel `k(a, b)`.
pub trait Kernel {
    /// Covariance between the phenomenon at `a` and at `b`.
    fn eval(&self, a: Point, b: Point) -> f64;

    /// Prior variance at a point, `k(p, p)`.
    fn variance_at(&self, p: Point) -> f64 {
        self.eval(p, p)
    }
}

/// Squared-exponential (RBF) kernel
/// `k(a,b) = σ² exp(−‖a−b‖² / (2ℓ²))` — infinitely smooth fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquaredExponential {
    /// Signal variance σ².
    pub variance: f64,
    /// Length scale ℓ in grid units.
    pub length_scale: f64,
}

impl SquaredExponential {
    /// Creates the kernel.
    ///
    /// # Panics
    /// Panics when either parameter is non-positive.
    pub fn new(variance: f64, length_scale: f64) -> Self {
        assert!(variance > 0.0, "variance must be positive");
        assert!(length_scale > 0.0, "length scale must be positive");
        Self {
            variance,
            length_scale,
        }
    }
}

impl Kernel for SquaredExponential {
    #[inline]
    fn eval(&self, a: Point, b: Point) -> f64 {
        let d2 = a.distance_squared(b);
        self.variance * (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }
}

/// Matérn-3/2 kernel
/// `k(a,b) = σ² (1 + √3 d/ℓ) exp(−√3 d/ℓ)` — once-differentiable fields,
/// the usual middle ground between the rough exponential and the
/// infinitely smooth RBF for environmental phenomena.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matern32 {
    /// Signal variance σ².
    pub variance: f64,
    /// Length scale ℓ in grid units.
    pub length_scale: f64,
}

impl Matern32 {
    /// Creates the kernel.
    ///
    /// # Panics
    /// Panics when either parameter is non-positive.
    pub fn new(variance: f64, length_scale: f64) -> Self {
        assert!(variance > 0.0, "variance must be positive");
        assert!(length_scale > 0.0, "length scale must be positive");
        Self {
            variance,
            length_scale,
        }
    }
}

impl Kernel for Matern32 {
    #[inline]
    fn eval(&self, a: Point, b: Point) -> f64 {
        let r = 3f64.sqrt() * a.distance(b) / self.length_scale;
        self.variance * (1.0 + r) * (-r).exp()
    }
}

/// Exponential (Ornstein–Uhlenbeck) kernel
/// `k(a,b) = σ² exp(−‖a−b‖ / ℓ)` — rough, Markovian fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Signal variance σ².
    pub variance: f64,
    /// Length scale ℓ in grid units.
    pub length_scale: f64,
}

impl Exponential {
    /// Creates the kernel.
    ///
    /// # Panics
    /// Panics when either parameter is non-positive.
    pub fn new(variance: f64, length_scale: f64) -> Self {
        assert!(variance > 0.0, "variance must be positive");
        assert!(length_scale > 0.0, "length scale must be positive");
        Self {
            variance,
            length_scale,
        }
    }
}

impl Kernel for Exponential {
    #[inline]
    fn eval(&self, a: Point, b: Point) -> f64 {
        let d = a.distance(b);
        self.variance * (-d / self.length_scale).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rbf_at_zero_distance_is_variance() {
        let k = SquaredExponential::new(2.5, 3.0);
        let p = Point::new(1.0, 1.0);
        assert_eq!(k.eval(p, p), 2.5);
        assert_eq!(k.variance_at(p), 2.5);
    }

    #[test]
    fn rbf_decays_with_distance() {
        let k = SquaredExponential::new(1.0, 2.0);
        let a = Point::ORIGIN;
        let near = k.eval(a, Point::new(1.0, 0.0));
        let far = k.eval(a, Point::new(5.0, 0.0));
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn rbf_known_value() {
        let k = SquaredExponential::new(1.0, 1.0);
        let v = k.eval(Point::ORIGIN, Point::new(1.0, 0.0));
        assert!((v - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn exponential_known_value() {
        let k = Exponential::new(1.0, 2.0);
        let v = k.eval(Point::ORIGIN, Point::new(2.0, 0.0));
        assert!((v - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn matern32_known_value_and_ordering() {
        let k = Matern32::new(1.0, 1.0);
        let p = Point::new(1.0, 0.0);
        let r = 3f64.sqrt();
        let want = (1.0 + r) * (-r).exp();
        assert!((k.eval(Point::ORIGIN, p) - want).abs() < 1e-12);
        // Smoothness ordering at matched scales: RBF ≥ Matérn-3/2 ≥ OU at
        // moderate distances.
        let rbf = SquaredExponential::new(1.0, 1.0);
        let ou = Exponential::new(1.0, 1.0);
        let d = Point::new(0.8, 0.0);
        assert!(rbf.eval(Point::ORIGIN, d) > k.eval(Point::ORIGIN, d));
        assert!(k.eval(Point::ORIGIN, d) > ou.eval(Point::ORIGIN, d));
    }

    #[test]
    fn matern32_is_psd_enough_to_factor() {
        // A Matérn kernel matrix over a grid must Cholesky-factor with
        // noise — the property the posterior engine relies on.
        use ps_linalg::{Cholesky, Matrix};
        let k = Matern32::new(2.0, 1.5);
        let pts: Vec<Point> = (0..16)
            .map(|i| Point::new((i % 4) as f64, (i / 4) as f64))
            .collect();
        let mut m = Matrix::from_fn(16, 16, |i, j| k.eval(pts[i], pts[j]));
        m.add_diagonal(1e-6);
        assert!(Cholesky::factor(&m).is_ok());
    }

    #[test]
    #[should_panic(expected = "length scale")]
    fn zero_length_scale_rejected() {
        let _ = SquaredExponential::new(1.0, 0.0);
    }

    proptest! {
        #[test]
        fn kernels_are_symmetric_and_bounded(
            ax in -10.0..10.0f64, ay in -10.0..10.0f64,
            bx in -10.0..10.0f64, by in -10.0..10.0f64,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let rbf = SquaredExponential::new(1.7, 2.3);
            let exp = Exponential::new(1.7, 2.3);
            prop_assert!((rbf.eval(a, b) - rbf.eval(b, a)).abs() < 1e-12);
            prop_assert!((exp.eval(a, b) - exp.eval(b, a)).abs() < 1e-12);
            prop_assert!(rbf.eval(a, b) <= 1.7 + 1e-12);
            prop_assert!(rbf.eval(a, b) >= 0.0);
            prop_assert!(exp.eval(a, b) <= 1.7 + 1e-12);
        }
    }
}
