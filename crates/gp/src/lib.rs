//! Gaussian processes for region-monitoring valuation and field synthesis.
//!
//! §2.3.1 of the paper models the monitored phenomenon as a Gaussian
//! process and valuates a sensor set `A` by the **expected reduction in
//! variance** at unobserved locations (Eq. 6):
//!
//! ```text
//! F(A) = Var(X_V) − ∫ P(x_A) · Var(X_V | X_A = x_A) dx_A
//! ```
//!
//! For a GP the posterior variance does not depend on the *observed
//! values*, only on the observation *locations*, so the expectation is
//! exact and closed-form: `F(A) = Σ_v [prior_var(v) − post_var(v | A)]`.
//! [`posterior::PosteriorField`] maintains that quantity incrementally via
//! rank-1 conditioning updates, giving O(cells) marginal-gain queries —
//! the inner loop of Algorithm 4.
//!
//! The crate also provides exact GP regression ([`gp::GaussianProcess`]),
//! prior sampling for synthesizing Intel-Lab-style correlated fields
//! ([`sample`]), and marginal-likelihood hyperparameter fitting
//! ([`hyper`]) used to "learn the parameters of the Gaussian model from a
//! fraction of sensor readings" (§4.6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gp;
pub mod hyper;
pub mod kernel;
pub mod posterior;
pub mod sample;

pub use gp::GaussianProcess;
pub use kernel::{Exponential, Kernel, Matern32, SquaredExponential};
pub use posterior::{PosteriorField, F_NORMALIZATION};
