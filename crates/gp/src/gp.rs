//! Exact Gaussian-process regression.

use crate::kernel::Kernel;
use ps_geo::Point;
use ps_linalg::{Cholesky, Matrix};

/// A Gaussian process conditioned on noisy observations.
///
/// Standard textbook GP regression: with observations `y` at locations
/// `X`, noise variance `σ_n²`, and kernel `k`,
///
/// ```text
/// mean(x*) = k*ᵀ (K + σ_n² I)⁻¹ y
/// var(x*)  = k(x*,x*) − k*ᵀ (K + σ_n² I)⁻¹ k*
/// ```
///
/// Used for hyperparameter fitting (log marginal likelihood) and as the
/// reference implementation the fast incremental
/// [`crate::posterior::PosteriorField`] is validated against.
pub struct GaussianProcess<K: Kernel> {
    kernel: K,
    noise_variance: f64,
    locations: Vec<Point>,
    chol: Option<Cholesky>,
    alpha: Vec<f64>,
    observations: Vec<f64>,
}

impl<K: Kernel> GaussianProcess<K> {
    /// Conditions a GP on observations `y` at `locations`.
    ///
    /// # Panics
    /// Panics when `locations.len() != y.len()` or the noise variance is
    /// negative.
    pub fn fit(kernel: K, locations: Vec<Point>, y: Vec<f64>, noise_variance: f64) -> Self {
        assert_eq!(locations.len(), y.len(), "locations/observations mismatch");
        assert!(noise_variance >= 0.0, "noise variance must be non-negative");
        if locations.is_empty() {
            return Self {
                kernel,
                noise_variance,
                locations,
                chol: None,
                alpha: Vec::new(),
                observations: y,
            };
        }
        let n = locations.len();
        let mut k = Matrix::from_fn(n, n, |i, j| kernel.eval(locations[i], locations[j]));
        k.add_diagonal(noise_variance.max(1e-10));
        let (chol, _jitter) =
            Cholesky::factor_with_jitter(&k, 1e-8, 12).expect("kernel matrix must factor");
        let alpha = chol.solve(&y);
        Self {
            kernel,
            noise_variance,
            locations,
            chol: Some(chol),
            alpha,
            observations: y,
        }
    }

    /// Number of conditioning observations.
    pub fn num_observations(&self) -> usize {
        self.locations.len()
    }

    /// Posterior mean at `x`.
    pub fn mean(&self, x: Point) -> f64 {
        if self.locations.is_empty() {
            return 0.0;
        }
        let kstar: Vec<f64> = self
            .locations
            .iter()
            .map(|&l| self.kernel.eval(x, l))
            .collect();
        ps_linalg::dot(&kstar, &self.alpha)
    }

    /// Posterior variance at `x` (never negative; clamped at 0).
    pub fn variance(&self, x: Point) -> f64 {
        let prior = self.kernel.variance_at(x);
        let Some(chol) = &self.chol else {
            return prior;
        };
        let kstar: Vec<f64> = self
            .locations
            .iter()
            .map(|&l| self.kernel.eval(x, l))
            .collect();
        let v = chol.forward_substitute(&kstar);
        let reduction: f64 = v.iter().map(|x| x * x).sum();
        (prior - reduction).max(0.0)
    }

    /// Log marginal likelihood of the conditioning observations — the
    /// objective maximized by hyperparameter fitting.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.locations.len();
        if n == 0 {
            return 0.0;
        }
        let chol = self.chol.as_ref().expect("fitted with data");
        let data_fit: f64 = self
            .observations
            .iter()
            .zip(&self.alpha)
            .map(|(y, a)| y * a)
            .sum();
        -0.5 * data_fit - 0.5 * chol.log_det() - 0.5 * n as f64 * (std::f64::consts::TAU).ln()
    }

    /// The noise variance the process was conditioned with.
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;

    fn kernel() -> SquaredExponential {
        SquaredExponential::new(1.0, 1.5)
    }

    #[test]
    fn empty_gp_returns_prior() {
        let gp = GaussianProcess::fit(kernel(), vec![], vec![], 0.1);
        let p = Point::new(3.0, 4.0);
        assert_eq!(gp.mean(p), 0.0);
        assert_eq!(gp.variance(p), 1.0);
    }

    #[test]
    fn interpolates_observations_with_low_noise() {
        let locs = vec![Point::new(0.0, 0.0), Point::new(3.0, 0.0)];
        let y = vec![2.0, -1.0];
        let gp = GaussianProcess::fit(kernel(), locs.clone(), y.clone(), 1e-6);
        for (l, target) in locs.iter().zip(&y) {
            assert!((gp.mean(*l) - target).abs() < 1e-3);
            assert!(gp.variance(*l) < 1e-3);
        }
    }

    #[test]
    fn variance_shrinks_near_observations() {
        let gp = GaussianProcess::fit(kernel(), vec![Point::ORIGIN], vec![1.0], 0.01);
        let near = gp.variance(Point::new(0.5, 0.0));
        let far = gp.variance(Point::new(10.0, 0.0));
        assert!(near < far);
        assert!((far - 1.0).abs() < 1e-6); // prior regained far away
    }

    #[test]
    fn variance_is_value_independent() {
        let locs = vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        let gp1 = GaussianProcess::fit(kernel(), locs.clone(), vec![0.0, 0.0], 0.1);
        let gp2 = GaussianProcess::fit(kernel(), locs, vec![100.0, -50.0], 0.1);
        let p = Point::new(1.5, 1.5);
        assert!((gp1.variance(p) - gp2.variance(p)).abs() < 1e-10);
    }

    #[test]
    fn more_observations_never_increase_variance() {
        let p = Point::new(2.0, 2.0);
        let few = GaussianProcess::fit(kernel(), vec![Point::ORIGIN], vec![1.0], 0.1);
        let more = GaussianProcess::fit(
            kernel(),
            vec![Point::ORIGIN, Point::new(2.5, 2.0)],
            vec![1.0, 0.5],
            0.1,
        );
        assert!(more.variance(p) <= few.variance(p) + 1e-10);
    }

    #[test]
    fn log_marginal_likelihood_prefers_true_noise() {
        // Data generated from a smooth function + tiny noise: a GP with
        // catastrophic noise assumptions should score worse.
        let locs: Vec<Point> = (0..8).map(|i| Point::new(i as f64, 0.0)).collect();
        let y: Vec<f64> = locs.iter().map(|p| (p.x * 0.5).sin()).collect();
        let good = GaussianProcess::fit(kernel(), locs.clone(), y.clone(), 0.01);
        let bad = GaussianProcess::fit(kernel(), locs, y, 25.0);
        assert!(good.log_marginal_likelihood() > bad.log_marginal_likelihood());
    }
}
