//! Per-slot admission control with explicit outcomes.

use std::collections::HashMap;

use ps_core::model::Slot;
use ps_core::streaming::{ArrivalEvent, ArrivalPayload};
use ps_core::valuation::SetValuation;

use crate::queue::{IntakeQueue, Ticket};

/// Per-slot quotas the controller enforces on query arrivals. Sensor
/// announcements are capacity, not load — they are always admitted and
/// never counted against either quota.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Maximum number of queries admitted into one slot.
    pub max_queries_per_slot: usize,
    /// Maximum total submitted budget admitted into one slot.
    pub max_budget_per_slot: f64,
    /// How many slots a query may be deferred before it is rejected.
    /// `0` means over-quota queries are rejected immediately.
    pub max_defer_slots: usize,
}

impl AdmissionPolicy {
    /// A policy that admits everything (useful as a pass-through).
    pub fn unlimited() -> Self {
        AdmissionPolicy {
            max_queries_per_slot: usize::MAX,
            max_budget_per_slot: f64::INFINITY,
            max_defer_slots: 0,
        }
    }
}

/// The explicit outcome of one submission for one slot. Backpressure is
/// visible, never silent: a query that does not run this slot is either
/// deferred (with the slot it will retry in) or rejected (with a
/// reason), and in both cases it pays nothing because it never reaches
/// the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// The event entered this slot's admitted stream.
    Admitted,
    /// Over quota; the query retries in `until_slot` ahead of fresh
    /// arrivals (effective tick 0, original submission order kept).
    Deferred {
        /// Slot the query will re-enter admission in.
        until_slot: Slot,
    },
    /// Dropped for good; the submitter must resubmit if still wanted.
    Rejected {
        /// Human-readable reason the query was dropped.
        reason: RejectReason,
    },
}

/// Why a query was rejected rather than deferred again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The query was deferred `max_defer_slots` times and still did not
    /// fit the quota.
    DeferralsExhausted,
    /// The query's own budget exceeds `max_budget_per_slot`, so no
    /// amount of deferral can ever admit it.
    BudgetExceedsSlotQuota,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::DeferralsExhausted => write!(f, "deferrals exhausted"),
            RejectReason::BudgetExceedsSlotQuota => {
                write!(f, "budget exceeds per-slot quota")
            }
        }
    }
}

/// The result of closing admission for one slot: the admitted event
/// stream (ready for `step_streaming`) plus the outcome of every ticket
/// that was pending when the slot closed.
#[derive(Debug)]
pub struct AdmissionBatch {
    /// The slot these outcomes are for.
    pub slot: Slot,
    /// Admitted events in deterministic stream order: deferred
    /// re-entrants first (original submission order, effective tick 0),
    /// then fresh arrivals sorted by `(tick, submission sequence)`.
    pub admitted: Vec<ArrivalEvent>,
    outcomes: HashMap<Ticket, Admission>,
}

impl AdmissionBatch {
    /// The outcome for `ticket` in this slot, if it was pending here.
    pub fn outcome(&self, ticket: Ticket) -> Option<&Admission> {
        self.outcomes.get(&ticket)
    }

    /// Iterates every `(ticket, outcome)` pair in this slot.
    pub fn outcomes(&self) -> impl Iterator<Item = (Ticket, &Admission)> {
        self.outcomes.iter().map(|(t, a)| (*t, a))
    }

    /// Number of queries deferred to a later slot.
    pub fn deferred(&self) -> usize {
        self.outcomes
            .values()
            .filter(|a| matches!(a, Admission::Deferred { .. }))
            .count()
    }

    /// Number of queries rejected outright.
    pub fn rejected(&self) -> usize {
        self.outcomes
            .values()
            .filter(|a| matches!(a, Admission::Rejected { .. }))
            .count()
    }
}

/// A deferred query carried across slots: the original ticket and
/// event, plus how many slots it has waited so far.
#[derive(Debug, Clone)]
struct Carryover {
    ticket: Ticket,
    event: ArrivalEvent,
    defers: usize,
}

/// Front door to the streaming engine: accepts timestamped submissions
/// at any time, then [`admit_slot`](AdmissionController::admit_slot)
/// closes one slot's intake and applies the quotas.
///
/// Determinism contract: outcomes depend only on the submission
/// sequence (order and ticks), never on wall-clock time, so a replayed
/// seeded arrival process admits the exact same stream.
#[derive(Debug)]
pub struct AdmissionController {
    policy: AdmissionPolicy,
    queue: IntakeQueue,
    carryover: Vec<Carryover>,
}

impl AdmissionController {
    /// A controller enforcing `policy`, with nothing pending.
    pub fn new(policy: AdmissionPolicy) -> Self {
        AdmissionController {
            policy,
            queue: IntakeQueue::new(),
            carryover: Vec::new(),
        }
    }

    /// The enforced policy.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// Submits one arrival for the next slot that closes; returns the
    /// ticket used to look up its outcome in that slot's
    /// [`AdmissionBatch`].
    pub fn submit(&mut self, event: ArrivalEvent) -> Ticket {
        self.queue.push(event)
    }

    /// Number of submissions waiting for the next slot (fresh plus
    /// deferred).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.carryover.len()
    }

    /// Closes intake for `slot`: every pending submission gets an
    /// explicit [`Admission`] outcome, and the admitted events come
    /// back in deterministic stream order.
    ///
    /// Quota accounting walks queries in stream order (deferred
    /// re-entrants first, then fresh arrivals by `(tick, sequence)`)
    /// and admits each query that keeps both the count and the budget
    /// totals within the policy. Sensor announcements are always
    /// admitted and skip the accounting entirely.
    pub fn admit_slot(&mut self, slot: Slot) -> AdmissionBatch {
        let mut admitted = Vec::new();
        let mut outcomes = HashMap::new();
        let mut queries = 0usize;
        let mut budget = 0.0f64;

        // Deferred queries keep their original submission order and
        // re-enter ahead of this slot's fresh arrivals at effective
        // tick 0.
        let carried = std::mem::take(&mut self.carryover);
        let fresh = self.queue.drain_sorted();

        let candidates = carried
            .into_iter()
            .map(|c| (c.ticket, c.event, c.defers, 0u64))
            .chain(fresh.into_iter().map(|(ticket, event)| {
                let tick = event.tick;
                (ticket, event, 0, tick)
            }));

        for (ticket, mut event, defers, effective_tick) in candidates {
            event.tick = effective_tick;
            let Some(cost) = query_budget(&event.payload) else {
                // Sensors are capacity, not load.
                admitted.push(event);
                outcomes.insert(ticket, Admission::Admitted);
                continue;
            };
            if cost > self.policy.max_budget_per_slot {
                outcomes.insert(
                    ticket,
                    Admission::Rejected {
                        reason: RejectReason::BudgetExceedsSlotQuota,
                    },
                );
                continue;
            }
            let fits = queries < self.policy.max_queries_per_slot
                && budget + cost <= self.policy.max_budget_per_slot;
            if fits {
                queries += 1;
                budget += cost;
                admitted.push(event);
                outcomes.insert(ticket, Admission::Admitted);
            } else if defers < self.policy.max_defer_slots {
                outcomes.insert(
                    ticket,
                    Admission::Deferred {
                        until_slot: slot + 1,
                    },
                );
                self.carryover.push(Carryover {
                    ticket,
                    event,
                    defers: defers + 1,
                });
            } else {
                outcomes.insert(
                    ticket,
                    Admission::Rejected {
                        reason: RejectReason::DeferralsExhausted,
                    },
                );
            }
        }

        AdmissionBatch {
            slot,
            admitted,
            outcomes,
        }
    }
}

/// The budget a query arrival puts against the slot quota; `None` for
/// sensor announcements.
fn query_budget(payload: &ArrivalPayload) -> Option<f64> {
    match payload {
        ArrivalPayload::Point(spec) => Some(spec.budget),
        ArrivalPayload::Aggregate(spec) => Some(spec.budget),
        ArrivalPayload::LocationMonitor(spec) => Some(spec.valuation.budget()),
        ArrivalPayload::RegionMonitor(spec) => Some(spec.valuation.max_value()),
        ArrivalPayload::Sensor(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_core::aggregator::PointSpec;
    use ps_core::model::SensorSnapshot;
    use ps_geo::Point;

    fn point(tick: u64, budget: f64) -> ArrivalEvent {
        ArrivalEvent::point(
            tick,
            PointSpec {
                loc: Point::new(1.0, 1.0),
                budget,
                theta_min: 0.2,
            },
        )
    }

    fn sensor(tick: u64) -> ArrivalEvent {
        ArrivalEvent::sensor(
            tick,
            SensorSnapshot {
                id: 7,
                loc: Point::new(2.0, 2.0),
                cost: 1.0,
                trust: 1.0,
                inaccuracy: 0.1,
            },
        )
    }

    fn policy(max_queries: usize, max_budget: f64, max_defers: usize) -> AdmissionPolicy {
        AdmissionPolicy {
            max_queries_per_slot: max_queries,
            max_budget_per_slot: max_budget,
            max_defer_slots: max_defers,
        }
    }

    #[test]
    fn sensors_bypass_quotas() {
        let mut ctl = AdmissionController::new(policy(0, 0.0, 0));
        let s = ctl.submit(sensor(5));
        let batch = ctl.admit_slot(0);
        assert_eq!(batch.admitted.len(), 1);
        assert_eq!(batch.outcome(s), Some(&Admission::Admitted));
    }

    #[test]
    fn budget_quota_defers_then_rejects() {
        let mut ctl = AdmissionController::new(policy(10, 15.0, 1));
        let a = ctl.submit(point(0, 10.0));
        let b = ctl.submit(point(1, 10.0));
        let batch = ctl.admit_slot(0);
        assert_eq!(batch.outcome(a), Some(&Admission::Admitted));
        assert_eq!(
            batch.outcome(b),
            Some(&Admission::Deferred { until_slot: 1 })
        );
        assert_eq!(batch.deferred(), 1);

        // Next slot is crowded again: b has exhausted its one deferral.
        let c = ctl.submit(point(0, 10.0));
        let batch = ctl.admit_slot(1);
        // b re-enters ahead of c, so b is admitted and c is deferred.
        assert_eq!(batch.outcome(b), Some(&Admission::Admitted));
        assert_eq!(
            batch.outcome(c),
            Some(&Admission::Deferred { until_slot: 2 })
        );

        // A query that can never fit is rejected immediately.
        let d = ctl.submit(point(0, 20.0));
        let batch = ctl.admit_slot(2);
        assert_eq!(
            batch.outcome(d),
            Some(&Admission::Rejected {
                reason: RejectReason::BudgetExceedsSlotQuota
            })
        );
        assert_eq!(batch.outcome(c), Some(&Admission::Admitted));
    }

    #[test]
    fn exhausted_deferrals_reject() {
        let mut ctl = AdmissionController::new(policy(1, f64::INFINITY, 1));
        let _winner = ctl.submit(point(0, 1.0));
        let second = ctl.submit(point(1, 1.0));
        let third = ctl.submit(point(2, 1.0));
        let batch = ctl.admit_slot(0);
        assert_eq!(
            batch.outcome(second),
            Some(&Admission::Deferred { until_slot: 1 })
        );
        assert_eq!(
            batch.outcome(third),
            Some(&Admission::Deferred { until_slot: 1 })
        );
        // Slot 1: re-entrants compete for the single seat in their
        // original order; third is out of deferrals and is dropped.
        let batch = ctl.admit_slot(1);
        assert_eq!(batch.outcome(second), Some(&Admission::Admitted));
        assert!(matches!(
            batch.outcome(third),
            Some(&Admission::Rejected {
                reason: RejectReason::DeferralsExhausted
            })
        ));
    }

    #[test]
    fn deferred_re_enter_at_tick_zero_keeping_order() {
        let mut ctl = AdmissionController::new(policy(1, f64::INFINITY, 2));
        let _first = ctl.submit(point(0, 1.0));
        let b = ctl.submit(point(700, 1.0));
        let c = ctl.submit(point(600, 1.0));
        ctl.admit_slot(0);
        // c arrived at an earlier tick than b, so c was deferred ahead
        // of b in stream order... but deferral order follows the slot-0
        // stream order (tick, seq): c (tick 600) before b (tick 700).
        let batch = ctl.admit_slot(1);
        assert_eq!(batch.outcome(c), Some(&Admission::Admitted));
        assert_eq!(
            batch.outcome(b),
            Some(&Admission::Deferred { until_slot: 2 })
        );
        assert_eq!(batch.admitted[0].tick, 0, "re-entrants run at tick 0");
    }

    #[test]
    fn unlimited_policy_admits_everything() {
        let mut ctl = AdmissionController::new(AdmissionPolicy::unlimited());
        let tickets: Vec<Ticket> = (0..20).map(|i| ctl.submit(point(i, 50.0))).collect();
        let batch = ctl.admit_slot(3);
        assert_eq!(batch.admitted.len(), 20);
        for t in tickets {
            assert_eq!(batch.outcome(t), Some(&Admission::Admitted));
        }
        assert_eq!(batch.rejected(), 0);
    }
}
