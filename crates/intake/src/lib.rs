//! Event-time intake for the streaming aggregator: a queue that accepts
//! mid-slot query submissions and sensor announcements, and an
//! admission controller that applies per-slot compute and budget quotas
//! *before* work reaches the engine.
//!
//! Production participatory-sensing traffic does not line up at slot
//! boundaries: queries and sensors arrive continuously, and bursty load
//! can exceed what one slot's selection pass should absorb. This crate
//! supplies the two pieces in front of
//! [`Aggregator::step_streaming`](ps_core::aggregator::Aggregator::step_streaming):
//!
//! * [`IntakeQueue`] — timestamped arrivals with a deterministic total
//!   order: events sort by `(tick, submission sequence)`, so replaying
//!   the same (seeded) arrival process always produces the same stream.
//! * [`AdmissionController`] — per-slot quotas on query count and
//!   submitted budget, with explicit [`Admission`] outcomes. Over-quota
//!   work is **deferred** to the next slot (bounded retries) or
//!   **rejected**, never silently delayed: backpressure is visible to
//!   the submitter, and deferred or rejected queries pay nothing
//!   because they never reach the engine at all.
//!
//! ```rust
//! use ps_core::aggregator::PointSpec;
//! use ps_core::streaming::ArrivalEvent;
//! use ps_intake::{Admission, AdmissionController, AdmissionPolicy};
//! use ps_geo::Point;
//!
//! let mut intake = AdmissionController::new(AdmissionPolicy {
//!     max_queries_per_slot: 1,
//!     max_budget_per_slot: f64::INFINITY,
//!     max_defer_slots: 1,
//! });
//! let spec = PointSpec { loc: Point::new(1.0, 1.0), budget: 10.0, theta_min: 0.2 };
//! let first = intake.submit(ArrivalEvent::point(10, spec));
//! let second = intake.submit(ArrivalEvent::point(20, spec));
//! let batch = intake.admit_slot(0);
//! assert_eq!(batch.admitted.len(), 1, "one query fits the quota");
//! assert_eq!(batch.outcome(first), Some(&Admission::Admitted));
//! assert!(matches!(batch.outcome(second), Some(&Admission::Deferred { until_slot: 1 })));
//! // Next slot the deferred query re-enters ahead of fresh arrivals.
//! let batch = intake.admit_slot(1);
//! assert_eq!(batch.outcome(second), Some(&Admission::Admitted));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod queue;

pub use admission::{
    Admission, AdmissionBatch, AdmissionController, AdmissionPolicy, RejectReason,
};
pub use queue::{IntakeQueue, Ticket};
