//! The timestamped intake queue.

use ps_core::streaming::ArrivalEvent;

/// Receipt for one submission, unique per queue (and per
/// [`AdmissionController`](crate::AdmissionController)) for its whole
/// lifetime. Tickets are how submitters look up their
/// [`Admission`](crate::Admission) outcome after the slot closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(pub u64);

/// One queued submission: the event plus its order-defining keys.
#[derive(Debug, Clone)]
pub(crate) struct QueuedEvent {
    pub(crate) ticket: Ticket,
    pub(crate) event: ArrivalEvent,
}

/// An event-time queue of mid-slot arrivals.
///
/// Ordering is deterministic and total: events drain sorted by
/// `(tick, submission sequence)`, so two submissions at the same tick
/// keep their submission order and a replayed (seeded) arrival process
/// always yields the same stream — the property the batch≡streaming
/// equivalence tests lean on.
#[derive(Debug, Default)]
pub struct IntakeQueue {
    entries: Vec<QueuedEvent>,
    next_seq: u64,
}

impl IntakeQueue {
    /// An empty queue; the first ticket issued is `Ticket(0)`.
    pub fn new() -> Self {
        IntakeQueue::default()
    }

    /// Enqueues one arrival and returns its ticket. The ticket's value
    /// is the submission sequence number, which is also the tiebreaker
    /// between events sharing a tick.
    pub fn push(&mut self, event: ArrivalEvent) -> Ticket {
        let ticket = Ticket(self.next_seq);
        self.next_seq += 1;
        self.entries.push(QueuedEvent { ticket, event });
        ticket
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains every queued event sorted by `(tick, submission
    /// sequence)`, emptying the queue. Ticket numbering continues from
    /// where it was — tickets stay unique across drains.
    pub fn drain_sorted(&mut self) -> Vec<(Ticket, ArrivalEvent)> {
        let mut entries = std::mem::take(&mut self.entries);
        entries.sort_by_key(|e| (e.event.tick, e.ticket));
        entries.into_iter().map(|e| (e.ticket, e.event)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_core::aggregator::PointSpec;
    use ps_geo::Point;

    fn point_at(tick: u64) -> ArrivalEvent {
        ArrivalEvent::point(
            tick,
            PointSpec {
                loc: Point::new(0.0, 0.0),
                budget: 10.0,
                theta_min: 0.2,
            },
        )
    }

    #[test]
    fn drains_by_tick_then_submission_order() {
        let mut q = IntakeQueue::new();
        let late = q.push(point_at(9));
        let early_a = q.push(point_at(3));
        let early_b = q.push(point_at(3));
        let order: Vec<Ticket> = q.drain_sorted().into_iter().map(|(t, _)| t).collect();
        assert_eq!(order, vec![early_a, early_b, late]);
        assert!(q.is_empty());
    }

    #[test]
    fn tickets_stay_unique_across_drains() {
        let mut q = IntakeQueue::new();
        let a = q.push(point_at(0));
        q.drain_sorted();
        let b = q.push(point_at(0));
        assert_ne!(a, b);
        assert_eq!(q.len(), 1);
    }
}
