//! Mobility traces: per-slot agent positions.

use ps_geo::{Point, Rect};

/// A generated mobility trace: `positions[slot][agent]` is the agent's
/// location during that time slot, or `None` when the agent is absent
/// (not yet arrived, departed, or outside the simulated world).
#[derive(Debug, Clone)]
pub struct MobilityTrace {
    num_agents: usize,
    positions: Vec<Vec<Option<Point>>>,
}

impl MobilityTrace {
    /// Builds a trace from a slot-major position table.
    ///
    /// # Panics
    /// Panics when rows have inconsistent agent counts.
    pub fn new(positions: Vec<Vec<Option<Point>>>) -> Self {
        let num_agents = positions.first().map_or(0, Vec::len);
        assert!(
            positions.iter().all(|row| row.len() == num_agents),
            "inconsistent agent count across slots"
        );
        Self {
            num_agents,
            positions,
        }
    }

    /// Number of time slots.
    pub fn num_slots(&self) -> usize {
        self.positions.len()
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.num_agents
    }

    /// Position of `agent` during `slot` (`None` when absent).
    ///
    /// # Panics
    /// Panics when `slot` or `agent` is out of range.
    pub fn position(&self, slot: usize, agent: usize) -> Option<Point> {
        self.positions[slot][agent]
    }

    /// Agents present inside `region` during `slot`, with their positions.
    pub fn agents_in<'a>(
        &'a self,
        slot: usize,
        region: &'a Rect,
    ) -> impl Iterator<Item = (usize, Point)> + 'a {
        self.positions[slot]
            .iter()
            .enumerate()
            .filter_map(move |(agent, pos)| pos.filter(|p| region.contains(*p)).map(|p| (agent, p)))
    }

    /// Number of agents present inside `region` during `slot`.
    pub fn count_in(&self, slot: usize, region: &Rect) -> usize {
        self.agents_in(slot, region).count()
    }

    /// Mean over all slots of the number of agents inside `region`.
    pub fn mean_occupancy(&self, region: &Rect) -> f64 {
        if self.positions.is_empty() {
            return 0.0;
        }
        let total: usize = (0..self.num_slots())
            .map(|s| self.count_in(s, region))
            .sum();
        total as f64 / self.num_slots() as f64
    }
}

/// A mobility model generating traces deterministically from its
/// configuration (including its seed).
pub trait MobilityModel {
    /// Generates a trace covering `num_slots` time slots.
    fn generate(&self, num_slots: usize) -> MobilityTrace;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> MobilityTrace {
        MobilityTrace::new(vec![
            vec![Some(Point::new(1.0, 1.0)), None, Some(Point::new(9.0, 9.0))],
            vec![None, Some(Point::new(2.0, 2.0)), Some(Point::new(8.0, 8.0))],
        ])
    }

    #[test]
    fn dimensions_are_reported() {
        let t = toy_trace();
        assert_eq!(t.num_slots(), 2);
        assert_eq!(t.num_agents(), 3);
    }

    #[test]
    fn positions_roundtrip() {
        let t = toy_trace();
        assert_eq!(t.position(0, 0), Some(Point::new(1.0, 1.0)));
        assert_eq!(t.position(0, 1), None);
        assert_eq!(t.position(1, 0), None);
    }

    #[test]
    fn agents_in_filters_by_region() {
        let t = toy_trace();
        let region = Rect::new(0.0, 0.0, 5.0, 5.0);
        let inside: Vec<usize> = t.agents_in(0, &region).map(|(a, _)| a).collect();
        assert_eq!(inside, vec![0]);
        assert_eq!(t.count_in(1, &region), 1);
    }

    #[test]
    fn mean_occupancy_averages_slots() {
        let t = toy_trace();
        let region = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(t.mean_occupancy(&region), 2.0);
    }

    #[test]
    #[should_panic(expected = "inconsistent agent count")]
    fn ragged_rows_rejected() {
        let _ = MobilityTrace::new(vec![vec![None], vec![None, None]]);
    }
}
