//! Random-waypoint mobility, exactly as §4.2 of the paper specifies:
//! "each sensor moves from its current location with a speed randomly
//! selected between zero and a sensor-specific maximum speed. The
//! direction of the movement is either up, down, left, or right, and is
//! randomly selected. The movements are limited to a region of 80×80
//! grids. Upon initialization the maximum speed of each sensor is set
//! randomly to 4 or 5, which are spread randomly in the region."

use crate::trace::{MobilityModel, MobilityTrace};
use ps_geo::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the random-waypoint model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomWaypoint {
    /// World width in grid units (80 in the paper).
    pub width: f64,
    /// World height in grid units (80 in the paper).
    pub height: f64,
    /// Number of agents (200 by default in the paper's RWM experiments).
    pub num_agents: usize,
    /// Per-agent maximum speed is drawn uniformly from this list
    /// (`[4.0, 5.0]` in the paper).
    pub max_speed_choices: Vec<f64>,
    /// RNG seed; traces are deterministic given the seed.
    pub seed: u64,
}

impl RandomWaypoint {
    /// The paper's RWM configuration: 80×80 world, 200 agents, speeds 4–5.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            width: 80.0,
            height: 80.0,
            num_agents: 200,
            max_speed_choices: vec![4.0, 5.0],
            seed,
        }
    }

    /// The world rectangle.
    pub fn bounds(&self) -> Rect {
        Rect::new(0.0, 0.0, self.width, self.height)
    }
}

impl MobilityModel for RandomWaypoint {
    fn generate(&self, num_slots: usize) -> MobilityTrace {
        assert!(
            !self.max_speed_choices.is_empty(),
            "need at least one max-speed choice"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Per-agent state.
        let mut pos: Vec<Point> = (0..self.num_agents)
            .map(|_| {
                Point::new(
                    rng.gen_range(0.0..self.width),
                    rng.gen_range(0.0..self.height),
                )
            })
            .collect();
        let max_speed: Vec<f64> = (0..self.num_agents)
            .map(|_| self.max_speed_choices[rng.gen_range(0..self.max_speed_choices.len())])
            .collect();

        let mut positions = Vec::with_capacity(num_slots);
        for _slot in 0..num_slots {
            positions.push(pos.iter().map(|&p| Some(p)).collect::<Vec<_>>());
            for (p, &vmax) in pos.iter_mut().zip(&max_speed) {
                let speed = rng.gen_range(0.0..=vmax);
                let (dx, dy) = match rng.gen_range(0..4u8) {
                    0 => (speed, 0.0),
                    1 => (-speed, 0.0),
                    2 => (0.0, speed),
                    _ => (0.0, -speed),
                };
                *p = p.offset(dx, dy).clamp(0.0, 0.0, self.width, self.height);
            }
        }
        MobilityTrace::new(positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_requested_shape() {
        let model = RandomWaypoint::paper_default(1);
        let trace = model.generate(10);
        assert_eq!(trace.num_slots(), 10);
        assert_eq!(trace.num_agents(), 200);
    }

    #[test]
    fn agents_stay_in_bounds() {
        let model = RandomWaypoint::paper_default(2);
        let trace = model.generate(50);
        let bounds = model.bounds();
        for slot in 0..trace.num_slots() {
            for agent in 0..trace.num_agents() {
                let p = trace
                    .position(slot, agent)
                    .expect("RWM agents always present");
                assert!(
                    bounds.contains(p),
                    "agent {agent} escaped at slot {slot}: {p:?}"
                );
            }
        }
    }

    #[test]
    fn agents_actually_move() {
        let model = RandomWaypoint::paper_default(3);
        let trace = model.generate(5);
        let moved = (0..trace.num_agents())
            .filter(|&a| trace.position(0, a) != trace.position(4, a))
            .count();
        assert!(moved > 150, "only {moved}/200 agents moved");
    }

    #[test]
    fn per_slot_displacement_bounded_by_max_speed() {
        let model = RandomWaypoint::paper_default(4);
        let trace = model.generate(20);
        for slot in 1..trace.num_slots() {
            for agent in 0..trace.num_agents() {
                let a = trace.position(slot - 1, agent).unwrap();
                let b = trace.position(slot, agent).unwrap();
                assert!(
                    a.distance(b) <= 5.0 + 1e-9,
                    "agent {agent} jumped {} at slot {slot}",
                    a.distance(b)
                );
            }
        }
    }

    #[test]
    fn movement_is_axis_aligned() {
        let model = RandomWaypoint::paper_default(5);
        let trace = model.generate(10);
        for slot in 1..trace.num_slots() {
            for agent in 0..trace.num_agents() {
                let a = trace.position(slot - 1, agent).unwrap();
                let b = trace.position(slot, agent).unwrap();
                let dx = (a.x - b.x).abs();
                let dy = (a.y - b.y).abs();
                assert!(
                    dx < 1e-9 || dy < 1e-9,
                    "diagonal move for agent {agent} at slot {slot}"
                );
            }
        }
    }

    #[test]
    fn same_seed_reproduces_trace() {
        let a = RandomWaypoint::paper_default(99).generate(10);
        let b = RandomWaypoint::paper_default(99).generate(10);
        for slot in 0..10 {
            for agent in 0..a.num_agents() {
                assert_eq!(a.position(slot, agent), b.position(slot, agent));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomWaypoint::paper_default(1).generate(3);
        let b = RandomWaypoint::paper_default(2).generate(3);
        let same = (0..a.num_agents())
            .filter(|&ag| a.position(0, ag) == b.position(0, ag))
            .count();
        assert!(same < 5, "{same} identical initial positions across seeds");
    }

    #[test]
    fn hotspot_occupancy_is_proportional_to_area() {
        // The paper's working region is the central 50×50 of 80×80;
        // uniform-ish agents should put roughly (50/80)² = 39 % inside.
        let model = RandomWaypoint::paper_default(7);
        let trace = model.generate(50);
        let hotspot = Rect::new(15.0, 15.0, 65.0, 65.0);
        let occ = trace.mean_occupancy(&hotspot) / model.num_agents as f64;
        assert!(
            (0.25..0.60).contains(&occ),
            "hotspot occupancy fraction {occ} implausible"
        );
    }
}
