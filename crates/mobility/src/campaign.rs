//! Campaign-style mobility: the substitute for the paper's RNC dataset.
//!
//! The real Nokia-campaign trace (OpenSense, Lausanne) is not
//! redistributable. What the acquisition algorithms consume from it is a
//! per-slot set of available sensor locations with three salient
//! properties the paper reports (§4.2):
//!
//! 1. a large world (237×300 grid of 100 m cells) with a 100×100 working
//!    region, so sensors are *sparser* around queried locations than in
//!    the RWM setup;
//! 2. 635 sensors in total of which only ~120 are inside the working
//!    region in any given slot (participants enter and leave);
//! 3. human-like movement: trips around a home anchor rather than a
//!    uniform random walk.
//!
//! [`CampaignModel`] synthesizes traces with exactly these properties:
//! each agent has a home anchor (a configurable fraction lies inside the
//! working region), alternates presence sessions with absence gaps, and
//! while present performs waypoint trips around its anchor with pauses.

use crate::trace::{MobilityModel, MobilityTrace};
use ps_geo::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the campaign-style mobility synthesizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignModel {
    /// World width (237 in the RNC setup).
    pub width: f64,
    /// World height (300 in the RNC setup).
    pub height: f64,
    /// Total number of agents (635 in the RNC setup).
    pub num_agents: usize,
    /// The aggregator's working region (the central 100×100 subregion).
    pub working_region: Rect,
    /// Fraction of agents whose home anchor lies inside the working
    /// region; tunes the ~120-agents-present calibration.
    pub anchor_in_region_fraction: f64,
    /// Number of "hub" areas inside the working region that in-region
    /// anchors cluster around. Human mobility is strongly clustered
    /// (campus, transit stops), which is what makes the real RNC trace
    /// *sparse around most queried locations* despite its headcount —
    /// uniform anchors would overestimate coverage.
    pub hub_count: usize,
    /// Standard deviation (grid units) of anchors around their hub.
    pub hub_spread: f64,
    /// Maximum trip distance from the anchor.
    pub trip_radius: f64,
    /// Speed range (grid units per slot) while travelling.
    pub speed_range: (f64, f64),
    /// Presence-session length range in slots.
    pub session_slots: (usize, usize),
    /// Absence-gap length range in slots.
    pub gap_slots: (usize, usize),
    /// Probability of pausing (not moving) in a slot while present.
    pub pause_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CampaignModel {
    /// RNC-like configuration: 237×300 world, central 100×100 working
    /// region, 635 agents calibrated to ≈120 present in the working
    /// region per slot.
    pub fn rnc_like(seed: u64) -> Self {
        let working = Rect::new(68.5, 100.0, 168.5, 200.0);
        Self {
            width: 237.0,
            height: 300.0,
            num_agents: 635,
            working_region: working,
            anchor_in_region_fraction: 0.32,
            hub_count: 4,
            hub_spread: 5.0,
            trip_radius: 8.0,
            speed_range: (1.0, 8.0),
            session_slots: (8, 30),
            gap_slots: (2, 25),
            pause_prob: 0.35,
            seed,
        }
    }

    /// The world rectangle.
    pub fn bounds(&self) -> Rect {
        Rect::new(0.0, 0.0, self.width, self.height)
    }
}

#[derive(Debug, Clone, Copy)]
enum AgentPhase {
    /// Absent until the slot index stored.
    AbsentUntil(usize),
    /// Present until the slot index stored.
    PresentUntil(usize),
}

struct AgentState {
    anchor: Point,
    pos: Point,
    target: Point,
    phase: AgentPhase,
}

impl MobilityModel for CampaignModel {
    fn generate(&self, num_slots: usize) -> MobilityTrace {
        assert!(self.num_agents > 0, "need at least one agent");
        assert!(
            (0.0..=1.0).contains(&self.anchor_in_region_fraction),
            "anchor fraction must be a probability"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let bounds = self.bounds();

        // Hub areas inside the working region; in-region anchors cluster
        // around them (clustered human mobility).
        let hubs: Vec<Point> = (0..self.hub_count.max(1))
            .map(|_| random_point_in(&mut rng, &self.working_region))
            .collect();

        let mut agents: Vec<AgentState> = (0..self.num_agents)
            .map(|_| {
                let anchor = if rng.gen_bool(self.anchor_in_region_fraction) {
                    let hub = hubs[rng.gen_range(0..hubs.len())];
                    let dx = self.hub_spread * standard_normal(&mut rng);
                    let dy = self.hub_spread * standard_normal(&mut rng);
                    bounds.clamp_point(hub.offset(dx, dy))
                } else {
                    random_point_in(&mut rng, &bounds)
                };
                // Stagger starts: roughly half begin present.
                let phase = if rng.gen_bool(0.5) {
                    AgentPhase::PresentUntil(rng.gen_range(0..=self.session_slots.1))
                } else {
                    AgentPhase::AbsentUntil(rng.gen_range(0..=self.gap_slots.1))
                };
                let pos = anchor;
                AgentState {
                    anchor,
                    pos,
                    target: pos,
                    phase,
                }
            })
            .collect();

        let mut positions = Vec::with_capacity(num_slots);
        for slot in 0..num_slots {
            // Record, then advance.
            let row: Vec<Option<Point>> = agents
                .iter()
                .map(|a| match a.phase {
                    AgentPhase::PresentUntil(_) => Some(a.pos),
                    AgentPhase::AbsentUntil(_) => None,
                })
                .collect();
            positions.push(row);

            for a in &mut agents {
                match a.phase {
                    AgentPhase::AbsentUntil(t) if slot >= t => {
                        // Re-enter near the anchor.
                        a.pos = jitter_around(&mut rng, a.anchor, self.trip_radius * 0.3, &bounds);
                        a.target = a.pos;
                        let dur = rng.gen_range(self.session_slots.0..=self.session_slots.1);
                        a.phase = AgentPhase::PresentUntil(slot + dur);
                    }
                    AgentPhase::PresentUntil(t) if slot >= t => {
                        let gap = rng.gen_range(self.gap_slots.0..=self.gap_slots.1);
                        a.phase = AgentPhase::AbsentUntil(slot + gap);
                    }
                    AgentPhase::PresentUntil(_) => {
                        if rng.gen_bool(self.pause_prob) {
                            continue;
                        }
                        // New trip when the current target is reached.
                        if a.pos.distance(a.target) < 0.5 {
                            a.target = jitter_around(&mut rng, a.anchor, self.trip_radius, &bounds);
                        }
                        let speed = rng.gen_range(self.speed_range.0..=self.speed_range.1);
                        let dist = a.pos.distance(a.target);
                        a.pos = if dist <= speed {
                            a.target
                        } else {
                            a.pos.lerp(a.target, speed / dist)
                        };
                    }
                    AgentPhase::AbsentUntil(_) => {}
                }
            }
        }
        MobilityTrace::new(positions)
    }
}

fn random_point_in<R: Rng>(rng: &mut R, rect: &Rect) -> Point {
    Point::new(
        rng.gen_range(rect.min_x..rect.max_x),
        rng.gen_range(rect.min_y..rect.max_y),
    )
}

/// One standard-normal draw via Box–Muller.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

fn jitter_around<R: Rng>(rng: &mut R, center: Point, radius: f64, bounds: &Rect) -> Point {
    let dx = rng.gen_range(-radius..=radius);
    let dy = rng.gen_range(-radius..=radius);
    bounds.clamp_point(center.offset(dx, dy))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_shape_and_bounds() {
        let model = CampaignModel::rnc_like(1);
        let trace = model.generate(50);
        assert_eq!(trace.num_slots(), 50);
        assert_eq!(trace.num_agents(), 635);
        let bounds = model.bounds();
        for slot in 0..trace.num_slots() {
            for agent in 0..trace.num_agents() {
                if let Some(p) = trace.position(slot, agent) {
                    assert!(bounds.contains(p));
                }
            }
        }
    }

    #[test]
    fn working_region_occupancy_matches_rnc_calibration() {
        // The paper reports ~120 sensors in the working region per slot.
        let model = CampaignModel::rnc_like(2);
        let trace = model.generate(50);
        let occ = trace.mean_occupancy(&model.working_region);
        assert!(
            (80.0..170.0).contains(&occ),
            "working-region occupancy {occ} outside the RNC-like band"
        );
    }

    #[test]
    fn agents_churn_in_and_out() {
        let model = CampaignModel::rnc_like(3);
        let trace = model.generate(50);
        // Some agent must transition between present and absent.
        let mut churned = 0;
        for agent in 0..trace.num_agents() {
            let mut seen_present = false;
            let mut seen_absent = false;
            for slot in 0..trace.num_slots() {
                match trace.position(slot, agent) {
                    Some(_) => seen_present = true,
                    None => seen_absent = true,
                }
            }
            if seen_present && seen_absent {
                churned += 1;
            }
        }
        assert!(churned > 300, "only {churned} agents churned");
    }

    #[test]
    fn movement_is_anchored() {
        // Agents should not drift arbitrarily far from their re-entry
        // area: displacement across the whole trace stays bounded by a
        // few trip radii (sanity for "human-like" trips).
        let model = CampaignModel::rnc_like(4);
        let trace = model.generate(50);
        let mut max_excursion = 0.0f64;
        for agent in 0..trace.num_agents() {
            let pts: Vec<Point> = (0..trace.num_slots())
                .filter_map(|s| trace.position(s, agent))
                .collect();
            if let Some(&first) = pts.first() {
                for p in &pts {
                    max_excursion = max_excursion.max(first.distance(*p));
                }
            }
        }
        assert!(
            max_excursion <= 5.0 * model.trip_radius,
            "excursion {max_excursion} too large for anchored trips"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CampaignModel::rnc_like(42).generate(20);
        let b = CampaignModel::rnc_like(42).generate(20);
        for slot in 0..20 {
            for agent in 0..a.num_agents() {
                assert_eq!(a.position(slot, agent), b.position(slot, agent));
            }
        }
    }

    #[test]
    fn sparser_than_rwm_near_any_point() {
        // RNC's defining contrast with RWM: lower sensor density in the
        // working region (120 sensors over 100×100 vs 200 over 80×80).
        let model = CampaignModel::rnc_like(5);
        let trace = model.generate(50);
        let density = trace.mean_occupancy(&model.working_region) / model.working_region.area();
        let rwm_density = 200.0 / (80.0 * 80.0);
        assert!(
            density < rwm_density,
            "campaign density {density} not sparser than RWM {rwm_density}"
        );
    }
}
