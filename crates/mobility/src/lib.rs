//! Mobility models and traces for participatory-sensing simulations.
//!
//! The paper evaluates on two mobility datasets (§4.2): **RWM**, a
//! random-waypoint trace on an 80×80 grid, and **RNC**, a real campaign
//! trace from Lausanne (637×300 grid working area, ~120 sensors present in
//! the 100×100 working region per slot). RWM is fully specified in the
//! paper and implemented verbatim in [`rwm`]; the campaign trace is not
//! redistributable, so [`campaign`] synthesizes a behaviourally equivalent
//! substitute (trip-based movement around home anchors with staggered
//! presence sessions — see DESIGN.md §4). [`stationary`] models fixed
//! deployments such as the Intel-Lab motes.
//!
//! All models are deterministic functions of their seed, producing a
//! [`MobilityTrace`]: per-slot optional positions for every agent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod rwm;
pub mod stationary;
pub mod trace;

pub use campaign::CampaignModel;
pub use rwm::RandomWaypoint;
pub use stationary::StationaryModel;
pub use trace::{MobilityModel, MobilityTrace};
