//! Stationary deployments (Intel-Lab-style motes).

use crate::trace::{MobilityModel, MobilityTrace};
use ps_geo::Point;
use serde::{Deserialize, Serialize};

/// A set of sensors that never move — the Intel-Lab motes whose readings
/// seed the region-monitoring ground truth (§4.2, §4.6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StationaryModel {
    /// Fixed sensor positions.
    pub positions: Vec<Point>,
}

impl StationaryModel {
    /// Creates a stationary deployment.
    pub fn new(positions: Vec<Point>) -> Self {
        Self { positions }
    }
}

impl MobilityModel for StationaryModel {
    fn generate(&self, num_slots: usize) -> MobilityTrace {
        let row: Vec<Option<Point>> = self.positions.iter().map(|&p| Some(p)).collect();
        MobilityTrace::new(vec![row; num_slots])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_never_change() {
        let model = StationaryModel::new(vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
        let trace = model.generate(10);
        assert_eq!(trace.num_slots(), 10);
        assert_eq!(trace.num_agents(), 2);
        for slot in 0..10 {
            assert_eq!(trace.position(slot, 0), Some(Point::new(1.0, 2.0)));
            assert_eq!(trace.position(slot, 1), Some(Point::new(3.0, 4.0)));
        }
    }

    #[test]
    fn empty_deployment_is_fine() {
        let trace = StationaryModel::new(vec![]).generate(3);
        assert_eq!(trace.num_agents(), 0);
        assert_eq!(trace.num_slots(), 3);
    }
}
