//! Facade over the participatory-sensing workspace — a from-scratch Rust
//! reproduction of Riahi, Papaioannou, Trummer & Aberer, *"Utility-driven
//! Data Acquisition in Participatory Sensing"*, EDBT 2013.
//!
//! Each subsystem lives in its own `ps_*` crate; this crate re-exports
//! them under one roof so downstream users can depend on a single package
//! and so the repository's `tests/` and `examples/` have a natural home.
//!
//! | Crate | Role |
//! |---|---|
//! | [`core`] (`ps_core`) | Queries, valuations, scheduling algorithms, payments (the paper's §2–§3) |
//! | [`cluster`] (`ps_cluster`) | Sharded federation: tiled multi-aggregator cluster, halo routing, settlement |
//! | [`intake`] (`ps_intake`) | Event-time intake queue + per-slot admission control for mid-slot arrivals |
//! | [`geo`] (`ps_geo`) | Grid geometry: points, rectangles, cells, trajectories, coverage |
//! | [`sim`] (`ps_sim`) | Time-slotted simulator + one experiment driver per figure (§4) |
//! | [`stats`] (`ps_stats`) | Regression, sampling-time selection, descriptive statistics |
//! | [`gp`] (`ps_gp`) | Gaussian processes: kernels, posterior variance fields, hyperfitting |
//! | [`solver`] (`ps_solver`) | Exact BILP/UFL branch-and-bound, Local Search, greedy engines |
//! | [`mobility`] (`ps_mobility`) | RWM, synthetic campaign, and stationary mobility models |
//! | [`linalg`] (`ps_linalg`) | Dense matrices, Cholesky, linear solves |
//! | [`data`] (`ps_data`) | Synthetic stand-ins for the Intel-Lab and OpenSense ozone traces |
//!
//! See `ps_core`'s crate docs for the paper-element → module table, and
//! the repository `README.md` for build/bench commands.
//!
//! # Example
//!
//! Schedule one slot of point queries with the exact (Eq. 9) solver:
//!
//! ```rust
//! use participatory_sensing::core::alloc::optimal::OptimalScheduler;
//! use participatory_sensing::core::alloc::PointScheduler;
//! use participatory_sensing::core::model::{QueryId, SensorSnapshot};
//! use participatory_sensing::core::query::{PointQuery, QueryOrigin};
//! use participatory_sensing::core::valuation::quality::QualityModel;
//! use participatory_sensing::geo::Point;
//!
//! let sensors = vec![SensorSnapshot {
//!     id: 0,
//!     loc: Point::new(2.0, 2.0),
//!     cost: 10.0,
//!     trust: 1.0,
//!     inaccuracy: 0.05,
//! }];
//! let queries = vec![PointQuery {
//!     id: QueryId(0),
//!     loc: Point::new(2.5, 2.5),
//!     budget: 30.0,
//!     offset: 0.0,
//!     theta_min: 0.2,
//!     origin: QueryOrigin::EndUser,
//! }];
//! // Eq. 4 quality model: sensors serve locations within d_max = 5.
//! let allocation =
//!     OptimalScheduler::new().schedule(&queries, &sensors, &QualityModel::new(5.0));
//! assert!(allocation.welfare > 0.0);
//! assert_eq!(allocation.sensors_used, vec![0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ps_cluster as cluster;
pub use ps_core as core;
pub use ps_data as data;
pub use ps_geo as geo;
pub use ps_gp as gp;
pub use ps_intake as intake;
pub use ps_linalg as linalg;
pub use ps_mobility as mobility;
pub use ps_sim as sim;
pub use ps_solver as solver;
pub use ps_stats as stats;
