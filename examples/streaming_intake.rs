//! Streaming intake: mid-slot submissions, visible backpressure, and
//! arrival-time matching through the online double auction.
//!
//! ```text
//! cargo run --release --example streaming_intake
//! ```
//!
//! Queries and sensors arrive *during* the slot instead of lining up at
//! the boundary. An `AdmissionController` applies a per-slot query
//! quota — the overflow query is **deferred** to the next slot with an
//! explicit outcome, not silently delayed — and the admitted stream
//! drives an `Aggregator` in `MixStrategy::OnlineAuction` mode, where
//! point queries clear against already-announced sensors at their
//! arrival tick instead of waiting for the slot to close.

use ps_core::aggregator::{AggregatorBuilder, MixStrategy, PointSpec};
use ps_core::model::SensorSnapshot;
use ps_core::streaming::ArrivalEvent;
use ps_core::valuation::quality::QualityModel;
use ps_geo::Point;
use ps_intake::{Admission, AdmissionController, AdmissionPolicy};

fn main() {
    // Front door: at most two queries per slot, one retry before drop.
    let mut intake = AdmissionController::new(AdmissionPolicy {
        max_queries_per_slot: 2,
        max_budget_per_slot: f64::INFINITY,
        max_defer_slots: 1,
    });

    // The slot as it actually unfolds (ticks out of 1 000): two sensors
    // announce early, a query arrives into a live market at tick 300, a
    // second query at tick 450 beats a cheaper sensor that only shows
    // up at tick 500, and a third query hits the quota.
    intake.submit(ArrivalEvent::sensor(100, sensor(0, 2.0, 2.0, 10.0)));
    intake.submit(ArrivalEvent::sensor(200, sensor(1, 6.0, 3.0, 12.0)));
    let early = intake.submit(ArrivalEvent::point(300, point(2.5, 2.5, 18.0)));
    let mid = intake.submit(ArrivalEvent::point(450, point(6.0, 2.5, 20.0)));
    intake.submit(ArrivalEvent::sensor(500, sensor(2, 6.2, 2.6, 6.0)));
    let overflow = intake.submit(ArrivalEvent::point(700, point(2.0, 2.0, 15.0)));

    let batch = intake.admit_slot(0);
    println!("slot 0 admission:");
    for (ticket, outcome) in [("early ", early), ("mid   ", mid), ("late  ", overflow)]
        .iter()
        .map(|&(name, t)| (name, batch.outcome(t).expect("submitted this slot")))
    {
        match outcome {
            Admission::Admitted => println!("  {ticket} query: admitted"),
            Admission::Deferred { until_slot } => {
                println!("  {ticket} query: deferred to slot {until_slot} (quota full)")
            }
            Admission::Rejected { reason } => println!("  {ticket} query: rejected ({reason})"),
        }
    }

    // The admitted stream drives the online auction: matches clear at
    // the arrival tick, and the report says how long each decision took.
    let mut engine = AggregatorBuilder::new(QualityModel::new(5.0))
        .strategy(MixStrategy::OnlineAuction)
        .build();
    let report = engine.step_streaming(0, &batch.admitted);

    println!("\nslot 0 online-auction matches:");
    for r in &report.point_results {
        match r.sensor {
            Some(si) => println!(
                "  query {:?} → sensor {si}: quality {:.2}, value {:.2}, pays {:.2}",
                r.id, r.quality, r.value, r.paid
            ),
            None => println!("  query {:?}: unmatched", r.id),
        }
    }
    let stats = report.streaming.as_ref().expect("streaming entry point");
    println!(
        "  {} of {} queries matched at arrival; decision ticks p50 {} / p99 {}",
        stats.matched_at_arrival,
        stats.query_arrivals,
        stats.p50().unwrap_or(0),
        stats.p99().unwrap_or(0),
    );
    println!(
        "  slot welfare {:.2}, receipts {:.2}",
        report.welfare,
        report.ledger.total_receipts()
    );

    // Next slot: the deferred query re-enters ahead of fresh arrivals
    // at tick 0 — backpressure delays it by exactly one slot.
    intake.submit(ArrivalEvent::sensor(50, sensor(3, 2.1, 2.1, 7.0)));
    let batch = intake.admit_slot(1);
    println!("\nslot 1 admission:");
    println!(
        "  deferred query now: {:?}",
        batch.outcome(overflow).expect("carried over")
    );
    let report = engine.step_streaming(1, &batch.admitted);
    for r in &report.point_results {
        if r.sensor.is_some() {
            println!(
                "  query {:?} matched: value {:.2}, pays {:.2}",
                r.id, r.value, r.paid
            );
        }
    }
}

fn sensor(id: usize, x: f64, y: f64, cost: f64) -> SensorSnapshot {
    SensorSnapshot {
        id,
        loc: Point::new(x, y),
        cost,
        trust: 1.0,
        inaccuracy: 0.05,
    }
}

fn point(x: f64, y: f64, budget: f64) -> PointSpec {
    PointSpec {
        loc: Point::new(x, y),
        budget,
        theta_min: 0.2,
    }
}
