//! Exact point scheduling under an anytime deadline.
//!
//! ```text
//! cargo run --release --example optimal_scheduling
//! ```
//!
//! One slot's worth of point queries goes through three schedulers for
//! the same announced sensors: greedy, the exact `ps_solver`
//! branch-and-bound with a generous budget, and the same exact solver
//! strangled to a 2 ms deadline. The deadline run is the anytime
//! contract on display: it still returns a feasible incumbent, and the
//! LP-relaxation bound printed next to each welfare turns "how good is
//! this schedule?" into a measured gap instead of a guess.

use ps_core::aggregator::{AggregatorBuilder, PointSpec, SlotReport};
use ps_core::alloc::optimal::{GreedyPointScheduler, OptimalScheduler, WithLpBound};
use ps_core::alloc::PointScheduler;
use ps_core::model::SensorSnapshot;
use ps_core::valuation::quality::QualityModel;
use ps_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn main() {
    // A seeded slot: 50 sensors and 80 point queries on a 40×40 arena,
    // dense enough that queries genuinely compete for shared sensors.
    let mut rng = StdRng::seed_from_u64(2013);
    let sensors: Vec<SensorSnapshot> = (0..50)
        .map(|id| SensorSnapshot {
            id,
            loc: Point::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0)),
            cost: rng.gen_range(6.0..14.0),
            trust: rng.gen_range(0.7..1.0),
            inaccuracy: rng.gen_range(0.0..0.1),
        })
        .collect();
    let specs: Vec<PointSpec> = (0..80)
        .map(|_| PointSpec {
            loc: Point::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0)),
            budget: rng.gen_range(4.0..20.0),
            theta_min: 0.2,
        })
        .collect();

    let greedy = run(WithLpBound::new(GreedyPointScheduler), &sensors, &specs);
    let exact = run(OptimalScheduler::new(), &sensors, &specs);
    let deadline = run(
        OptimalScheduler::new().deadline(Duration::from_millis(2)),
        &sensors,
        &specs,
    );

    println!("Eq. 9 point scheduling, one slot, 50 sensors / 80 queries\n");
    println!(
        "{:<22} {:>10} {:>10} {:>7}",
        "scheduler", "welfare", "lp bound", "gap"
    );
    report("greedy (certified)", &greedy);
    report("exact (full budget)", &exact);
    report("exact (2 ms deadline)", &deadline);

    println!(
        "\nThe deadline run still satisfied {} of {} queries — a limited \
         solve hands back its best incumbent, it never fails the slot.",
        deadline.breakdown.point_satisfied, deadline.breakdown.point_total,
    );
}

fn run(
    scheduler: impl PointScheduler,
    sensors: &[SensorSnapshot],
    specs: &[PointSpec],
) -> SlotReport {
    let mut engine = AggregatorBuilder::new(QualityModel::new(5.0))
        .scheduler(scheduler)
        .build();
    for spec in specs {
        engine.submit_point(*spec);
    }
    engine.step(0, sensors)
}

fn report(name: &str, slot: &SlotReport) {
    let welfare = slot.breakdown.point_sched_welfare;
    let bound = slot.breakdown.point_lp_bound;
    let gap = slot
        .breakdown
        .optimality_gap()
        .map_or("n/a".to_string(), |g| format!("{:.2}%", g * 100.0));
    println!("{name:<22} {welfare:>10.2} {bound:>10.2} {gap:>7}");
}
