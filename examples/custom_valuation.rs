//! Bring your own valuation: the aggregator treats `v_q(·)` as a black
//! box, so applications can submit arbitrary set functions to the engine.
//!
//! ```text
//! cargo run --release --example custom_valuation
//! ```
//!
//! Here an application values *spatial diversity*: it pays for sensor
//! readings spread across quadrants of its region of interest (one reading
//! per quadrant is enough), with a quality bonus. This function is neither
//! coverage nor any of the paper's examples — the engine's Algorithm 1
//! stage schedules it anyway, jointly with a plain point query that
//! competes for the same sensors.

use ps_core::aggregator::{AggregatorBuilder, PointSpec};
use ps_core::model::SensorSnapshot;
use ps_core::valuation::quality::QualityModel;
use ps_core::valuation::FnValuation;
use ps_geo::{Point, Rect};

fn main() {
    let region = Rect::new(0.0, 0.0, 20.0, 20.0);
    let budget_per_quadrant = 18.0;

    // Custom black-box valuation: budget × (#distinct quadrants covered),
    // discounted by the average reading quality.
    let diversity = move |set: &[SensorSnapshot]| -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        let mut quadrants = [false; 4];
        for s in set {
            let qx = usize::from(s.loc.x >= region.center().x);
            let qy = usize::from(s.loc.y >= region.center().y);
            quadrants[qx * 2 + qy] = true;
        }
        let covered = quadrants.iter().filter(|&&q| q).count() as f64;
        let avg_quality: f64 =
            set.iter().map(|s| s.intrinsic_quality()).sum::<f64>() / set.len() as f64;
        budget_per_quadrant * covered * avg_quality
    };

    // Tonight's participants.
    let sensors = vec![
        sensor(0, 3.0, 3.0, 0.95),
        sensor(1, 16.0, 4.0, 0.90),
        sensor(2, 4.0, 17.0, 0.85),
        sensor(3, 15.0, 16.0, 1.00),
        sensor(4, 15.5, 15.0, 0.70), // cheap quadrant duplicate
    ];

    // The engine schedules the custom valuation and a competing plain
    // point query (near the north-east quadrant) in one joint stage.
    let mut engine = AggregatorBuilder::new(QualityModel::new(6.0)).build();
    let diversity_id =
        engine.submit_valuation(FnValuation::new(diversity, 4.0 * budget_per_quadrant));
    let point_id = engine.submit_point(PointSpec {
        loc: Point::new(15.5, 15.5),
        budget: 20.0,
        theta_min: 0.2,
    });
    let report = engine.step(0, &sensors);

    println!("Algorithm 1 over a custom diversity valuation + a point query");
    println!(
        "selected sensors: {:?}",
        report
            .sensors_used
            .iter()
            .map(|&si| sensors[si].id)
            .collect::<Vec<_>>()
    );
    let diversity_result = &report.custom_results[0];
    assert_eq!(diversity_result.id, diversity_id);
    println!(
        "diversity application: value {:.2} (of max {:.2}), paid {:.2} across {} sensors",
        diversity_result.value,
        4.0 * budget_per_quadrant,
        diversity_result.paid,
        diversity_result.sensors.len()
    );
    let point_result = &report.point_results[0];
    assert_eq!(point_result.id, point_id);
    println!(
        "point query:           value {:.2}, paid {:.2}",
        point_result.value, point_result.paid
    );
    println!("total welfare: {:.2}", report.welfare);
    println!(
        "\nNote how sensor 3 serves BOTH queries (NE quadrant + point),\n\
         splitting its cost by Eq. 11 — the sharing the paper is about."
    );
}

fn sensor(id: usize, x: f64, y: f64, trust: f64) -> SensorSnapshot {
    SensorSnapshot {
        id,
        loc: Point::new(x, y),
        cost: 10.0,
        trust,
        inaccuracy: 0.05,
    }
}
