//! Bring your own valuation: the aggregator treats `v_q(·)` as a black
//! box, so applications can plug arbitrary set functions into Algorithm 1.
//!
//! ```text
//! cargo run --release --example custom_valuation
//! ```
//!
//! Here an application values *spatial diversity*: it pays for sensor
//! readings spread across quadrants of its region of interest (one reading
//! per quadrant is enough), with a quality bonus. This function is neither
//! coverage nor any of the paper's examples — Algorithm 1 schedules it
//! anyway, jointly with a plain point query that competes for the same
//! sensors.

use ps_core::alloc::greedy::greedy_select;
use ps_core::model::{QueryId, SensorSnapshot};
use ps_core::query::{PointQuery, QueryOrigin};
use ps_core::valuation::point::PointValuation;
use ps_core::valuation::quality::QualityModel;
use ps_core::valuation::{FnValuation, SetValuation};
use ps_geo::{Point, Rect};

fn main() {
    let region = Rect::new(0.0, 0.0, 20.0, 20.0);
    let budget_per_quadrant = 18.0;

    // Custom black-box valuation: budget × (#distinct quadrants covered),
    // discounted by the average reading quality.
    let diversity = move |set: &[SensorSnapshot]| -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        let mut quadrants = [false; 4];
        for s in set {
            let qx = usize::from(s.loc.x >= region.center().x);
            let qy = usize::from(s.loc.y >= region.center().y);
            quadrants[qx * 2 + qy] = true;
        }
        let covered = quadrants.iter().filter(|&&q| q).count() as f64;
        let avg_quality: f64 =
            set.iter().map(|s| s.intrinsic_quality()).sum::<f64>() / set.len() as f64;
        budget_per_quadrant * covered * avg_quality
    };
    let mut custom = FnValuation::new(diversity, 4.0 * budget_per_quadrant);

    // A competing plain point query near the north-east quadrant.
    let quality_model = QualityModel::new(6.0);
    let mut point = PointValuation::new(
        PointQuery {
            id: QueryId(42),
            loc: Point::new(15.5, 15.5),
            budget: 20.0,
            offset: 0.0,
            theta_min: 0.2,
            origin: QueryOrigin::EndUser,
        },
        quality_model,
    );

    // Tonight's participants.
    let sensors = vec![
        sensor(0, 3.0, 3.0, 0.95),
        sensor(1, 16.0, 4.0, 0.90),
        sensor(2, 4.0, 17.0, 0.85),
        sensor(3, 15.0, 16.0, 1.00),
        sensor(4, 15.5, 15.0, 0.70), // cheap quadrant duplicate
    ];

    let mut vals: Vec<&mut dyn SetValuation> = vec![&mut custom, &mut point];
    let outcome = greedy_select(&mut vals, &sensors);

    println!("Algorithm 1 over a custom diversity valuation + a point query");
    println!(
        "selected sensors: {:?}",
        outcome
            .selected
            .iter()
            .map(|&si| sensors[si].id)
            .collect::<Vec<_>>()
    );
    println!(
        "diversity application: value {:.2} (of max {:.2}), paid {:.2}",
        outcome.per_query_value[0],
        custom.max_value(),
        outcome.per_query_payments[0]
            .iter()
            .map(|&(_, p)| p)
            .sum::<f64>()
    );
    println!(
        "point query:           value {:.2}, paid {:.2}",
        outcome.per_query_value[1],
        outcome.per_query_payments[1]
            .iter()
            .map(|&(_, p)| p)
            .sum::<f64>()
    );
    println!("total welfare: {:.2}", outcome.welfare);
    println!(
        "quadrants covered by committed set: {}",
        custom.committed().len()
    );
    println!(
        "\nNote how sensor 3 serves BOTH queries (NE quadrant + point),\n\
         splitting its cost by Eq. 11 — the sharing the paper is about."
    );
}

fn sensor(id: usize, x: f64, y: f64, trust: f64) -> SensorSnapshot {
    SensorSnapshot {
        id,
        loc: Point::new(x, y),
        cost: 10.0,
        trust,
        inaccuracy: 0.05,
    }
}
