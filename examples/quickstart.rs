//! Quickstart: one aggregator engine, one slot of point queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Five participants announce locations and prices; three applications ask
//! for the phenomenon at nearby spots with different budgets. The
//! `Aggregator` engine solves the Eq. 9 welfare maximization with the
//! exact scheduler, shares sensors across queries, and charges each query
//! proportionally to the value it gets (Eq. 11).

use ps_core::aggregator::{AggregatorBuilder, PointSpec};
use ps_core::alloc::optimal::OptimalScheduler;
use ps_core::model::SensorSnapshot;
use ps_core::valuation::quality::QualityModel;
use ps_geo::Point;

fn main() {
    // The aggregator's per-slot view of the participants.
    let sensors = vec![
        sensor(0, 2.0, 2.0, 10.0, 1.00, 0.05),
        sensor(1, 6.0, 2.5, 10.0, 0.90, 0.10),
        sensor(2, 4.0, 6.0, 10.0, 0.95, 0.02),
        sensor(3, 9.0, 9.0, 10.0, 0.80, 0.15),
        sensor(4, 1.0, 8.0, 10.0, 1.00, 0.00),
    ];

    // The whole aggregator loop in five lines: build the engine around
    // the Eq. 4 quality model (d_max = 5), submit queries, run the slot.
    let mut engine = AggregatorBuilder::new(QualityModel::new(5.0))
        .scheduler(OptimalScheduler::new())
        .build();
    // Three point queries; the two at (2.5, 2.5) share a location and can
    // split one sensor's cost.
    for (x, y, budget) in [(2.5, 2.5, 12.0), (2.5, 2.5, 9.0), (5.5, 3.0, 25.0)] {
        engine.submit_point(PointSpec {
            loc: Point::new(x, y),
            budget,
            theta_min: 0.2,
        });
    }
    let report = engine.step(0, &sensors);

    println!("slot welfare (total utility): {:.2}\n", report.welfare);
    for r in &report.point_results {
        match r.sensor {
            Some(si) => println!(
                "query {:?}: sensor {} → quality {:.2}, value {:.2}, pays {:.2}",
                r.id, sensors[si].id, r.quality, r.value, r.paid
            ),
            None => println!(
                "query {:?}: unanswered (not worth any sensor's price)",
                r.id
            ),
        }
    }
    println!(
        "\nsensors tasked: {:?} (receipts {:.2})",
        report
            .sensors_used
            .iter()
            .map(|&si| sensors[si].id)
            .collect::<Vec<_>>(),
        report.ledger.total_receipts()
    );
    println!(
        "engine totals after 1 slot: {} queries in, {} satisfied, welfare {:.2}",
        report.totals.breakdown.point_total,
        report.totals.breakdown.point_satisfied,
        report.totals.welfare
    );
}

fn sensor(id: usize, x: f64, y: f64, cost: f64, trust: f64, inaccuracy: f64) -> SensorSnapshot {
    SensorSnapshot {
        id,
        loc: Point::new(x, y),
        cost,
        trust,
        inaccuracy,
    }
}
