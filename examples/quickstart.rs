//! Quickstart: schedule one slot of point queries with the exact solver.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Five participants announce locations and prices; three applications ask
//! for the phenomenon at nearby spots with different budgets. The
//! aggregator solves the Eq. 9 welfare maximization, shares sensors across
//! queries, and charges each query proportionally to the value it gets
//! (Eq. 11).

use ps_core::alloc::optimal::OptimalScheduler;
use ps_core::alloc::PointScheduler;
use ps_core::model::{QueryId, SensorSnapshot};
use ps_core::query::{PointQuery, QueryOrigin};
use ps_core::valuation::quality::QualityModel;
use ps_geo::Point;

fn main() {
    // The aggregator's per-slot view of the participants.
    let sensors = vec![
        sensor(0, 2.0, 2.0, 10.0, 1.00, 0.05),
        sensor(1, 6.0, 2.5, 10.0, 0.90, 0.10),
        sensor(2, 4.0, 6.0, 10.0, 0.95, 0.02),
        sensor(3, 9.0, 9.0, 10.0, 0.80, 0.15),
        sensor(4, 1.0, 8.0, 10.0, 1.00, 0.00),
    ];

    // Three point queries; the two at (2.5, 2.5) share a location and can
    // split one sensor's cost.
    let queries = vec![
        query(1, 2.5, 2.5, 12.0),
        query(2, 2.5, 2.5, 9.0),
        query(3, 5.5, 3.0, 25.0),
    ];

    // Eq. 4 quality model: sensors serve locations within d_max = 5.
    let quality = QualityModel::new(5.0);

    let allocation = OptimalScheduler::new().schedule(&queries, &sensors, &quality);

    println!("slot welfare (total utility): {:.2}\n", allocation.welfare);
    for (q, a) in queries.iter().zip(&allocation.assignments) {
        match a {
            Some(a) => println!(
                "query {:?} at ({:.1},{:.1}): sensor {} → quality {:.2}, value {:.2}, pays {:.2}",
                q.id, q.loc.x, q.loc.y, sensors[a.sensor].id, a.quality, a.value, a.payment
            ),
            None => println!(
                "query {:?} at ({:.1},{:.1}): unanswered (not worth any sensor's price)",
                q.id, q.loc.x, q.loc.y
            ),
        }
    }
    println!(
        "\nsensors tasked: {:?} (total cost {:.2})",
        allocation
            .sensors_used
            .iter()
            .map(|&si| sensors[si].id)
            .collect::<Vec<_>>(),
        allocation.total_sensor_cost
    );
}

fn sensor(id: usize, x: f64, y: f64, cost: f64, trust: f64, inaccuracy: f64) -> SensorSnapshot {
    SensorSnapshot {
        id,
        loc: Point::new(x, y),
        cost,
        trust,
        inaccuracy,
    }
}

fn query(id: u64, x: f64, y: f64, budget: f64) -> PointQuery {
    PointQuery {
        id: QueryId(id),
        loc: Point::new(x, y),
        budget,
        offset: 0.0,
        theta_min: 0.2,
        origin: QueryOrigin::EndUser,
    }
}
