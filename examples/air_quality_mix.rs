//! Air-quality scenario: the paper's motivating query mix, end to end.
//!
//! ```text
//! cargo run --release --example air_quality_mix
//! ```
//!
//! A city's participants move under a random-waypoint model. Each 5-minute
//! slot, commuters ask for CO₂ at street corners (point queries), a news
//! site wants district-wide averages (aggregate queries), and a clinic
//! continuously monitors the level outside its door (location monitoring).
//! Two `Aggregator` engines serve identical workloads: one runs
//! Algorithm 5 (joint selection, sensor sharing), the other the
//! sequential baseline. Watch the utility gap.

use ps_core::aggregator::{Aggregator, AggregatorBuilder, LocationMonitorSpec, MixStrategy};
use ps_core::valuation::monitoring::{MonitoringContext, MonitoringValuation};
use ps_core::valuation::quality::QualityModel;
use ps_data::ozone::{OzoneConfig, OzoneTrace};
use ps_geo::{Point, Rect};
use ps_mobility::{MobilityModel, RandomWaypoint};
use ps_sim::sensors::{SensorPool, SensorPoolConfig};
use ps_sim::workload::{aggregate_queries, point_queries, BudgetScheme};
use ps_stats::regression::DiurnalBasis;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const SLOTS: usize = 12;

fn main() {
    let city = Rect::new(0.0, 0.0, 40.0, 40.0);
    let trace = RandomWaypoint {
        width: 40.0,
        height: 40.0,
        num_agents: 80,
        max_speed_choices: vec![3.0, 4.0],
        seed: 7,
    }
    .generate(SLOTS);

    // The clinic's CO₂ history: a diurnal pattern from past days.
    let ozone = OzoneTrace::generate(
        &OzoneConfig {
            slots_per_day: 50,
            seed: 7,
            ..OzoneConfig::default()
        },
        SLOTS,
    );
    let ctx = Arc::new(MonitoringContext {
        basis: DiurnalBasis {
            period: 50.0,
            harmonics: 2,
        },
        history: ozone.history(),
        fold: Some((50.0, -100.0)),
    });

    // Two identical worlds so the comparison is apples to apples.
    let mut alg5_world = World::new(&ctx, MixStrategy::Alg5);
    let mut base_world = World::new(&ctx, MixStrategy::SequentialBaseline);

    println!("slot |   Alg5 utility | Baseline utility | Alg5 pts | Base pts");
    println!("-----+----------------+------------------+----------+---------");
    for slot in 0..SLOTS {
        let (a_u, a_pts) = alg5_world.step(slot, &trace, &city);
        let (b_u, b_pts) = base_world.step(slot, &trace, &city);
        println!("{slot:>4} | {a_u:>14.1} | {b_u:>16.1} | {a_pts:>8} | {b_pts:>8}");
    }
    println!("-----+----------------+------------------+----------+---------");
    let alg5_total = alg5_world.engine.totals().welfare;
    let base_total = base_world.engine.totals().welfare;
    println!(
        "total utility: Alg5 {alg5_total:.1} vs Baseline {base_total:.1}  ({:.1}× better)",
        if base_total.abs() > 1e-9 {
            alg5_total / base_total
        } else {
            f64::INFINITY
        }
    );
    // The clinic monitor ran through slot SLOTS-1, so it retired at the
    // final step; its full state lives in the retired list.
    let (a_samples, a_quality) = clinic_stats(&alg5_world.engine);
    let (b_samples, b_quality) = clinic_stats(&base_world.engine);
    println!(
        "clinic monitor: Alg5 sampled {a_samples} times (quality {a_quality:.2}), \
         baseline {b_samples} times (quality {b_quality:.2})",
    );
}

fn clinic_stats(engine: &Aggregator) -> (usize, f64) {
    use ps_core::aggregator::RetiredMonitor;
    match engine.retired_monitors().first() {
        Some(RetiredMonitor::Location(m)) => (m.sampled_times().len(), m.quality_of_results()),
        _ => {
            let m = &engine.location_monitors()[0];
            (m.sampled_times().len(), m.quality_of_results())
        }
    }
}

struct World {
    engine: Aggregator<'static>,
    pool: SensorPool,
    rng: StdRng,
}

impl World {
    fn new(ctx: &Arc<MonitoringContext>, strategy: MixStrategy) -> Self {
        let mut engine = AggregatorBuilder::new(QualityModel::new(5.0))
            .sensing_range(8.0)
            .strategy(strategy)
            .build();
        // The clinic monitors (20, 20) for the whole run, sampling every
        // 4th slot by preference.
        let desired: Vec<f64> = (0..SLOTS).step_by(4).map(|t| t as f64).collect();
        engine.submit_location_monitor(LocationMonitorSpec {
            loc: Point::new(20.5, 20.5),
            t1: 0,
            t2: SLOTS - 1,
            alpha: 0.5,
            theta_min: 0.2,
            valuation: MonitoringValuation::new(ctx.clone(), 120.0, desired),
        });
        Self {
            engine,
            pool: SensorPool::new(80, &SensorPoolConfig::paper_default(SLOTS, 99)),
            rng: StdRng::seed_from_u64(1234),
        }
    }

    fn step(
        &mut self,
        slot: usize,
        trace: &ps_mobility::MobilityTrace,
        city: &Rect,
    ) -> (f64, usize) {
        let sensors = self.pool.snapshots(slot, trace, city);
        for spec in point_queries(&mut self.rng, 25, city, BudgetScheme::Fixed(14.0)) {
            self.engine.submit_point(spec);
        }
        for spec in aggregate_queries(&mut self.rng, 3, city, 8.0, 12.0) {
            self.engine.submit_aggregate(spec);
        }
        let report = self.engine.step(slot, &sensors);
        self.pool
            .record_measurements(slot, report.sensors_used.iter().map(|&si| sensors[si].id));
        (report.welfare, report.breakdown.point_satisfied)
    }
}
