//! Air-quality scenario: the paper's motivating query mix, end to end.
//!
//! ```text
//! cargo run --release --example air_quality_mix
//! ```
//!
//! A city's participants move under a random-waypoint model. Each 5-minute
//! slot, commuters ask for CO₂ at street corners (point queries), a news
//! site wants district-wide averages (aggregate queries), and a clinic
//! continuously monitors the level outside its door (location monitoring).
//! Algorithm 5 schedules everything jointly, sharing sensors across query
//! types; the baseline executes queries sequentially. Watch the utility
//! gap.

use ps_core::mix::{run_mix_alg5, run_mix_baseline};
use ps_core::model::QueryId;
use ps_core::monitor::location::LocationMonitor;
use ps_core::valuation::monitoring::{MonitoringContext, MonitoringValuation};
use ps_core::valuation::quality::QualityModel;
use ps_data::ozone::{OzoneConfig, OzoneTrace};
use ps_geo::{Point, Rect};
use ps_mobility::{MobilityModel, RandomWaypoint};
use ps_sim::sensors::{SensorPool, SensorPoolConfig};
use ps_sim::workload::{aggregate_queries, point_queries, BudgetScheme};
use ps_stats::regression::DiurnalBasis;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const SLOTS: usize = 12;

fn main() {
    let city = Rect::new(0.0, 0.0, 40.0, 40.0);
    let trace = RandomWaypoint {
        width: 40.0,
        height: 40.0,
        num_agents: 80,
        max_speed_choices: vec![3.0, 4.0],
        seed: 7,
    }
    .generate(SLOTS);
    let quality = QualityModel::new(5.0);

    // The clinic's CO₂ history: a diurnal pattern from past days.
    let ozone = OzoneTrace::generate(
        &OzoneConfig {
            slots_per_day: 50,
            seed: 7,
            ..OzoneConfig::default()
        },
        SLOTS,
    );
    let ctx = Arc::new(MonitoringContext {
        basis: DiurnalBasis {
            period: 50.0,
            harmonics: 2,
        },
        history: ozone.history(),
        fold: Some((50.0, -100.0)),
    });

    // Two identical worlds so the comparison is apples to apples.
    let mut alg5_world = World::new(&ctx);
    let mut base_world = World::new(&ctx);

    println!("slot |   Alg5 utility | Baseline utility | Alg5 pts | Base pts");
    println!("-----+----------------+------------------+----------+---------");
    let (mut alg5_total, mut base_total) = (0.0, 0.0);
    for slot in 0..SLOTS {
        let (a_u, a_pts) = alg5_world.step(slot, &trace, &city, &quality, true);
        let (b_u, b_pts) = base_world.step(slot, &trace, &city, &quality, false);
        alg5_total += a_u;
        base_total += b_u;
        println!("{slot:>4} | {a_u:>14.1} | {b_u:>16.1} | {a_pts:>8} | {b_pts:>8}");
    }
    println!("-----+----------------+------------------+----------+---------");
    println!(
        "total utility: Alg5 {alg5_total:.1} vs Baseline {base_total:.1}  ({:.1}× better)",
        if base_total.abs() > 1e-9 {
            alg5_total / base_total
        } else {
            f64::INFINITY
        }
    );
    println!(
        "clinic monitor: Alg5 sampled {} times (quality {:.2}), baseline {} times (quality {:.2})",
        alg5_world.monitors[0].sampled_times().len(),
        alg5_world.monitors[0].quality_of_results(),
        base_world.monitors[0].sampled_times().len(),
        base_world.monitors[0].quality_of_results(),
    );
}

struct World {
    pool: SensorPool,
    monitors: Vec<LocationMonitor>,
    rng: StdRng,
    next_id: u64,
}

impl World {
    fn new(ctx: &Arc<MonitoringContext>) -> Self {
        // The clinic monitors (20, 20) for the whole run, sampling every
        // 4th slot by preference.
        let desired: Vec<f64> = (0..SLOTS).step_by(4).map(|t| t as f64).collect();
        let valuation = MonitoringValuation::new(ctx.clone(), 120.0, desired);
        let monitor = LocationMonitor::new(
            QueryId(9_000),
            Point::new(20.5, 20.5),
            0,
            SLOTS - 1,
            0.5,
            0.2,
            valuation,
        );
        Self {
            pool: SensorPool::new(80, &SensorPoolConfig::paper_default(SLOTS, 99)),
            monitors: vec![monitor],
            rng: StdRng::seed_from_u64(1234),
            next_id: 0,
        }
    }

    fn step(
        &mut self,
        slot: usize,
        trace: &ps_mobility::MobilityTrace,
        city: &Rect,
        quality: &QualityModel,
        use_alg5: bool,
    ) -> (f64, usize) {
        let sensors = self.pool.snapshots(slot, trace, city);
        let points = point_queries(
            &mut self.rng,
            25,
            city,
            BudgetScheme::Fixed(14.0),
            &mut self.next_id,
        );
        let aggs = aggregate_queries(&mut self.rng, 3, city, 8.0, 12.0, &mut self.next_id);
        let outcome = if use_alg5 {
            run_mix_alg5(
                slot,
                &sensors,
                quality,
                8.0,
                &points,
                &aggs,
                &mut self.monitors,
                &mut [],
                &mut self.next_id,
            )
        } else {
            run_mix_baseline(
                slot,
                &sensors,
                quality,
                8.0,
                &points,
                &aggs,
                &mut self.monitors,
                &mut self.next_id,
            )
        };
        self.pool
            .record_measurements(slot, outcome.sensors_used.iter().map(|&si| sensors[si].id));
        (outcome.welfare, outcome.breakdown.point_satisfied)
    }
}
