//! Region monitoring: watch a Gaussian-process-valued district (§2.3.1).
//!
//! ```text
//! cargo run --release --example city_monitoring
//! ```
//!
//! An environmental agency monitors a district for 15 slots. The
//! phenomenon is modelled as a GP whose hyperparameters are *learned* from
//! a handful of fixed calibration stations (the Intel-Lab substitute);
//! an `Aggregator` engine then selects mobile participants slot by slot
//! via Algorithms 3+4, maximizing the expected reduction in field
//! variance per franc spent.

use ps_core::aggregator::{AggregatorBuilder, RegionMonitorSpec, RetiredMonitor};
use ps_core::alloc::optimal::OptimalScheduler;
use ps_core::valuation::quality::QualityModel;
use ps_core::valuation::region::RegionValuation;
use ps_data::intel::{IntelConfig, IntelFieldDataset};
use ps_geo::Rect;
use ps_gp::hyper::{fit_rbf, HyperGrid};
use ps_mobility::{MobilityModel, RandomWaypoint};
use ps_sim::sensors::{SensorPool, SensorPoolConfig};

const SLOTS: usize = 15;

fn main() {
    // Ground-truth field over the 20×15 district.
    let dataset = IntelFieldDataset::generate(&IntelConfig::default(), SLOTS);

    // Learn GP hyperparameters from half of the calibration stations.
    let readings = dataset.mote_readings(0);
    let half = readings.len() / 2;
    let (locs, vals): (Vec<_>, Vec<_>) = readings[..half].iter().copied().unzip();
    let fitted = fit_rbf(&locs, &vals, &HyperGrid::default());
    println!(
        "learned GP: signal variance {:.2}, length scale {:.2}, noise {:.3} (lml {:.1})",
        fitted.kernel.variance,
        fitted.kernel.length_scale,
        fitted.noise_variance,
        fitted.log_marginal_likelihood
    );

    // The engine: Eq. 18 cost weighting and A_{r,t} sharing on, exact
    // point scheduling, r_s = 2 (§4.6).
    let mut engine = AggregatorBuilder::new(QualityModel::new(2.0))
        .scheduler(OptimalScheduler::new())
        .build();

    // The monitored district and its budgeted query.
    let district = Rect::new(4.0, 3.0, 16.0, 12.0);
    let budget = district.area() / (3.0 * std::f64::consts::PI * 4.0) * 20.0;
    engine.submit_region_monitor(RegionMonitorSpec {
        t1: 0,
        t2: SLOTS - 1,
        alpha: 0.5,
        theta_min: 0.2,
        valuation: RegionValuation::new(budget, district, &fitted.kernel, fitted.noise_variance),
    });
    println!(
        "monitoring {}×{} district for {SLOTS} slots, budget {budget:.1}\n",
        district.width(),
        district.height()
    );

    // 30 mobile participants roam the grid.
    let bounds = Rect::new(0.0, 0.0, 20.0, 15.0);
    let trace = RandomWaypoint {
        width: 20.0,
        height: 15.0,
        num_agents: 30,
        max_speed_choices: vec![2.0, 3.0],
        seed: 5,
    }
    .generate(SLOTS);
    let mut pool = SensorPool::new(30, &SensorPoolConfig::paper_default(SLOTS, 5));

    println!("slot | slot utility | cumulative value | spent | quality (v/B)");
    println!("-----+--------------+------------------+-------+--------------");
    for slot in 0..SLOTS {
        let sensors = pool.snapshots(slot, &trace, &bounds);
        let report = engine.step(slot, &sensors);
        pool.record_measurements(slot, report.sensors_used.iter().map(|&si| sensors[si].id));
        // The monitor is live until the final slot retires it.
        let (value, spent, quality) = match engine.region_monitors().first() {
            Some(m) => (m.value(), m.spent(), m.quality_of_results()),
            None => match &engine.retired_monitors()[0] {
                RetiredMonitor::Region(m) => (m.value(), m.spent(), m.quality_of_results()),
                RetiredMonitor::Location(_) => unreachable!("only a region monitor was submitted"),
            },
        };
        println!(
            "{slot:>4} | {:>12.2} | {value:>16.2} | {spent:>5.1} | {quality:>12.3}",
            report.welfare,
        );
    }
    let retired = &engine.retired_monitors()[0];
    println!(
        "\nfinal: value {:.2} for {:.2} spent → net utility {:.2} (quality {:.2}, may exceed 1)",
        retired.value(),
        retired.spent(),
        retired.value() - retired.spent(),
        retired.quality_of_results()
    );
}
