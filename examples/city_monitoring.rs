//! Region monitoring: watch a Gaussian-process-valued district (§2.3.1).
//!
//! ```text
//! cargo run --release --example city_monitoring
//! ```
//!
//! An environmental agency monitors a district for 15 slots. The
//! phenomenon is modelled as a GP whose hyperparameters are *learned* from
//! a handful of fixed calibration stations (the Intel-Lab substitute);
//! mobile participants then get selected slot by slot via Algorithms 3+4,
//! maximizing the expected reduction in field variance per franc spent.

use ps_core::alloc::optimal::OptimalScheduler;
use ps_core::mix::run_region_slot;
use ps_core::model::QueryId;
use ps_core::monitor::region::RegionMonitor;
use ps_core::valuation::quality::QualityModel;
use ps_core::valuation::region::RegionValuation;
use ps_data::intel::{IntelConfig, IntelFieldDataset};
use ps_geo::Rect;
use ps_gp::hyper::{fit_rbf, HyperGrid};
use ps_mobility::{MobilityModel, RandomWaypoint};
use ps_sim::sensors::{SensorPool, SensorPoolConfig};

const SLOTS: usize = 15;

fn main() {
    // Ground-truth field over the 20×15 district.
    let dataset = IntelFieldDataset::generate(&IntelConfig::default(), SLOTS);

    // Learn GP hyperparameters from half of the calibration stations.
    let readings = dataset.mote_readings(0);
    let half = readings.len() / 2;
    let (locs, vals): (Vec<_>, Vec<_>) = readings[..half].iter().copied().unzip();
    let fitted = fit_rbf(&locs, &vals, &HyperGrid::default());
    println!(
        "learned GP: signal variance {:.2}, length scale {:.2}, noise {:.3} (lml {:.1})",
        fitted.kernel.variance,
        fitted.kernel.length_scale,
        fitted.noise_variance,
        fitted.log_marginal_likelihood
    );

    // The monitored district and its budgeted query.
    let district = Rect::new(4.0, 3.0, 16.0, 12.0);
    let budget = district.area() / (3.0 * std::f64::consts::PI * 4.0) * 20.0;
    let valuation = RegionValuation::new(budget, district, &fitted.kernel, fitted.noise_variance);
    let mut monitors = vec![RegionMonitor::new(
        QueryId(1),
        0,
        SLOTS - 1,
        0.5,
        0.2,
        valuation,
    )];
    println!(
        "monitoring {}×{} district for {SLOTS} slots, budget {budget:.1}\n",
        district.width(),
        district.height()
    );

    // 30 mobile participants roam the grid.
    let bounds = Rect::new(0.0, 0.0, 20.0, 15.0);
    let trace = RandomWaypoint {
        width: 20.0,
        height: 15.0,
        num_agents: 30,
        max_speed_choices: vec![2.0, 3.0],
        seed: 5,
    }
    .generate(SLOTS);
    let mut pool = SensorPool::new(30, &SensorPoolConfig::paper_default(SLOTS, 5));
    let quality = QualityModel::new(2.0);
    let scheduler = OptimalScheduler::new();
    let mut next_id = 100u64;

    println!("slot | slot utility | cumulative value | spent | quality (v/B)");
    println!("-----+--------------+------------------+-------+--------------");
    for slot in 0..SLOTS {
        let sensors = pool.snapshots(slot, &trace, &bounds);
        let out = run_region_slot(
            slot,
            &sensors,
            &quality,
            &mut monitors,
            &scheduler,
            true,
            true,
            &mut next_id,
        );
        pool.record_measurements(slot, out.sensors_used.iter().map(|&si| sensors[si].id));
        let m = &monitors[0];
        println!(
            "{slot:>4} | {:>12.2} | {:>16.2} | {:>5.1} | {:>12.3}",
            out.welfare,
            m.value(),
            m.spent(),
            m.quality_of_results()
        );
    }
    let m = &monitors[0];
    println!(
        "\nfinal: value {:.2} for {:.2} spent → net utility {:.2} (quality {:.2}, may exceed 1)",
        m.value(),
        m.spent(),
        m.utility(),
        m.quality_of_results()
    );
}
